#include "eval/bool_engine.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "index/block_posting_list.h"
#include "index/decoded_block_cache.h"
#include "testing/raw_posting_oracle.h"
#include "lang/classify.h"
#include "scoring/probabilistic.h"
#include "scoring/tfidf.h"

namespace fts {

namespace {

/// A sorted node set with node-level scores.
struct NodeSet {
  std::vector<NodeId> nodes;
  std::vector<double> scores;
};

class BoolEvaluator {
 public:
  BoolEvaluator(const InvertedIndex* index, const AlgebraScoreModel* model,
                EvalCounters* counters, CursorMode mode,
                const RawPostingOracle* raw_oracle, DecodedBlockCache* cache,
                const Deadline* deadline, const TombstoneSet* tombstones)
      : index_(index),
        model_(model),
        counters_(counters),
        mode_(mode),
        raw_oracle_(raw_oracle),
        cache_(cache),
        deadline_(deadline),
        tombstones_(tombstones) {}

  StatusOr<NodeSet> Eval(const LangExprPtr& e) {
    // Per-operator deadline check: a free (unset) deadline costs one
    // branch; overruns are bounded by one operator's merge.
    if (deadline_ != nullptr && deadline_->Expired()) {
      return Status::DeadlineExceeded("query deadline expired (BOOL)");
    }
    switch (e->kind()) {
      case LangExpr::Kind::kToken:
        return EvalToken(e->token());
      case LangExpr::Kind::kAny:
        return EvalAny();
      case LangExpr::Kind::kNot: {
        FTS_ASSIGN_OR_RETURN(NodeSet in, Eval(e->child()));
        return Complement(in);
      }
      case LangExpr::Kind::kAnd: {
        // AND NOT runs as a merge difference without touching IL_ANY.
        if (e->right()->kind() == LangExpr::Kind::kNot &&
            e->left()->kind() != LangExpr::Kind::kNot) {
          FTS_ASSIGN_OR_RETURN(NodeSet l, Eval(e->left()));
          FTS_ASSIGN_OR_RETURN(NodeSet r, Eval(e->right()->child()));
          return Difference(l, r);
        }
        if (e->left()->kind() == LangExpr::Kind::kNot &&
            e->right()->kind() != LangExpr::Kind::kNot) {
          FTS_ASSIGN_OR_RETURN(NodeSet l, Eval(e->right()));
          FTS_ASSIGN_OR_RETURN(NodeSet r, Eval(e->left()->child()));
          return Difference(l, r);
        }
        if (mode_ != CursorMode::kSequential) {
          // Token operands can intersect by zig-zag seeking over the
          // compressed lists, decoding only landing blocks instead of
          // scanning both lists end to end. kSeek always does; kAdaptive
          // asks the planner per AND operator, using the actual list sizes
          // on each side (df for tokens, cardinality for evaluated sets).
          // Scores are identical to the merge path either way.
          const bool ltok = e->left()->kind() == LangExpr::Kind::kToken;
          const bool rtok = e->right()->kind() == LangExpr::Kind::kToken;
          if (ltok && rtok) {
            if (UseSeek(TokenDf(e->left()->token()),
                        TokenDf(e->right()->token()))) {
              return ZigZagTokens(e->left()->token(), e->right()->token());
            }
          } else if (rtok) {
            FTS_ASSIGN_OR_RETURN(NodeSet l, Eval(e->left()));
            if (UseSeek(l.nodes.size(), TokenDf(e->right()->token()))) {
              return IntersectSetToken(l, e->right()->token(), /*set_on_left=*/true);
            }
            FTS_ASSIGN_OR_RETURN(NodeSet r, Eval(e->right()));
            return Intersect(l, r);
          } else if (ltok) {
            FTS_ASSIGN_OR_RETURN(NodeSet r, Eval(e->right()));
            if (UseSeek(r.nodes.size(), TokenDf(e->left()->token()))) {
              return IntersectSetToken(r, e->left()->token(), /*set_on_left=*/false);
            }
            FTS_ASSIGN_OR_RETURN(NodeSet l, Eval(e->left()));
            return Intersect(l, r);
          }
        }
        FTS_ASSIGN_OR_RETURN(NodeSet l, Eval(e->left()));
        FTS_ASSIGN_OR_RETURN(NodeSet r, Eval(e->right()));
        return Intersect(l, r);
      }
      case LangExpr::Kind::kOr: {
        FTS_ASSIGN_OR_RETURN(NodeSet l, Eval(e->left()));
        FTS_ASSIGN_OR_RETURN(NodeSet r, Eval(e->right()));
        return Union(l, r);
      }
      default:
        return Status::Unsupported(
            "BOOL cannot evaluate position variables or predicates");
    }
  }

 private:
  double TokenEntryScore(TokenId id, NodeId node, size_t pos_count) const {
    return model_ ? model_->EntryScore(*index_, id, node, pos_count) : 0.0;
  }

  uint64_t TokenDf(const std::string& token) const {
    return index_->df(index_->LookupToken(token));
  }

  /// Per-operator access-mode decision for an AND whose sides would read
  /// `a` and `b` entries: kSeek forces seeking, kAdaptive asks the planner.
  bool UseSeek(uint64_t a, uint64_t b) const {
    if (mode_ == CursorMode::kSeek) return true;
    assert(mode_ == CursorMode::kAdaptive);
    const uint64_t dfs[2] = {a, b};
    return PlanFromDfs(dfs) == CursorMode::kSeek;
  }

  template <typename CursorT>
  StatusOr<NodeSet> ScanToken(CursorT cursor, TokenId id) {
    NodeSet out;
    while (cursor.NextEntry() != kInvalidNode) {
      const NodeId n = cursor.current_node();
      out.nodes.push_back(n);
      out.scores.push_back(TokenEntryScore(id, n, cursor.pos_count()));
    }
    // A lazily validated block that fails its first-touch decode exhausts
    // the cursor early and records why; surface that instead of a silently
    // truncated node set.
    FTS_RETURN_IF_ERROR(cursor.status());
    return out;
  }

  /// Both cursor modes scan the block-resident list; the raw oracle (tests
  /// only) substitutes a ListCursor through the identical merge code.
  StatusOr<NodeSet> EvalToken(const std::string& token) {
    const TokenId id = index_->LookupToken(token);
    if (raw_oracle_ != nullptr) {
      return ScanToken(ListCursor(raw_oracle_->list(id), counters_, tombstones_), id);
    }
    return ScanToken(
        BlockListCursor(index_->block_list(id), counters_, cache_, tombstones_),
        id);
  }

  StatusOr<NodeSet> EvalAny() {
    NodeSet out;
    const double s = model_ ? model_->AnyLeafScore() : 0.0;
    const auto collect = [&](auto cursor) -> Status {
      while (cursor.NextEntry() != kInvalidNode) {
        out.nodes.push_back(cursor.current_node());
        out.scores.push_back(s);
      }
      return cursor.status();
    };
    if (raw_oracle_ != nullptr) {
      FTS_RETURN_IF_ERROR(collect(ListCursor(&raw_oracle_->any_list, counters_, tombstones_)));
    } else {
      FTS_RETURN_IF_ERROR(
          collect(BlockListCursor(&index_->block_any_list(), counters_, cache_,
                                  tombstones_)));
    }
    return out;
  }

  /// AND of two token lists by two-sided zig-zag seek.
  StatusOr<NodeSet> ZigZagTokens(const std::string& ltok, const std::string& rtok) {
    const TokenId lid = index_->LookupToken(ltok);
    const TokenId rid = index_->LookupToken(rtok);
    if (raw_oracle_ != nullptr) {
      return ZigZag(ListCursor(raw_oracle_->list(lid), counters_, tombstones_),
                    ListCursor(raw_oracle_->list(rid), counters_, tombstones_),
                    lid, rid);
    }
    return ZigZag(
        BlockListCursor(index_->block_list(lid), counters_, cache_, tombstones_),
        BlockListCursor(index_->block_list(rid), counters_, cache_, tombstones_),
        lid, rid);
  }

  /// Word-level intersection of two bitset-encoded blocks: when both
  /// cursors rest in dense blocks, every match in the blocks' id overlap
  /// [max(a,b), min(block maxima)] falls out of AND-ing bitset words —
  /// entry ranks recovered by popcount index the decoded headers for the
  /// exact pos_count JoinScore needs, and tombstones are filtered the same
  /// way the cursor movement primitives would. Both cursors then seek past
  /// the processed range. Returns false (cursors untouched) whenever the
  /// shape does not apply, letting the plain zig-zag step run.
  bool TryDenseBlockAnd(BlockListCursor& lc, BlockListCursor& rc, TokenId lid,
                        TokenId rid, NodeId* a, NodeId* b, NodeSet* out) {
    // Spans are bounded by kDenseSpanFactor * block_size for built blocks;
    // the cap keeps the rank scratch stack-resident and rejects oversized
    // (foreign) blocks rather than ever allocating here.
    constexpr size_t kMaxDenseWords = 64;
    BlockListCursor::DenseBlockView lv, rv;
    if (!lc.CurrentDenseBlock(&lv) || !rc.CurrentDenseBlock(&rv)) return false;
    if (lv.nwords > kMaxDenseWords || rv.nwords > kMaxDenseWords) return false;
    const NodeId lo = std::max(*a, *b);
    const NodeId hi = std::min(lv.max_node, rv.max_node);
    if (lo > hi) return false;  // disjoint blocks: one plain seek handles it
    const auto lentries = lc.block_entries();
    const auto rentries = rc.block_entries();
    const auto load_word = [](const uint8_t* p) {
      uint64_t w = 0;
      for (int b = 0; b < 8; ++b) w |= uint64_t{p[b]} << (8 * b);
      return w;
    };
    uint64_t rwords[kMaxDenseWords];
    uint32_t rcum[kMaxDenseWords + 1];  // set bits before word w
    rcum[0] = 0;
    for (size_t w = 0; w < rv.nwords; ++w) {
      rwords[w] = load_word(rv.words + 8 * w);
      rcum[w + 1] = rcum[w] + static_cast<uint32_t>(std::popcount(rwords[w]));
    }
    const TombstoneSet* ltomb = lc.tombstone_filter();
    const TombstoneSet* rtomb = rc.tombstone_filter();
    if (counters_ != nullptr) ++counters_->bitset_blocks_intersected;
    uint32_t lrank_before = 0;
    for (size_t w = 0; w < lv.nwords; ++w) {
      const uint64_t lword = load_word(lv.words + 8 * w);
      const NodeId wstart = lv.base + static_cast<NodeId>(64 * w);
      if (wstart > hi) break;
      if (wstart + 63 < lo) {
        lrank_before += static_cast<uint32_t>(std::popcount(lword));
        continue;
      }
      uint64_t m = lword;
      if (lo > wstart) m &= ~uint64_t{0} << (lo - wstart);
      if (hi - wstart < 63) m &= (uint64_t{1} << (hi - wstart + 1)) - 1;
      // Gather the right-side bits covering this word's id range: the
      // bitsets' bases differ, so shift-align across the word boundary.
      const int64_t d = static_cast<int64_t>(wstart) - rv.base;
      uint64_t rbits = 0;
      if (d >= 0) {
        const size_t rw = static_cast<size_t>(d) / 64;
        const unsigned sh = static_cast<unsigned>(d) % 64;
        const uint64_t lo_w = rw < rv.nwords ? rwords[rw] : 0;
        const uint64_t hi_w = rw + 1 < rv.nwords ? rwords[rw + 1] : 0;
        rbits = sh == 0 ? lo_w : (lo_w >> sh) | (hi_w << (64 - sh));
      } else if (-d < 64) {
        rbits = rwords[0] << static_cast<unsigned>(-d);
      }
      m &= rbits;
      while (m != 0) {
        const int bit = std::countr_zero(m);
        m &= m - 1;
        const NodeId node = wstart + static_cast<NodeId>(bit);
        if ((ltomb != nullptr && ltomb->Contains(node)) ||
            (rtomb != nullptr && rtomb->Contains(node))) {
          continue;
        }
        const uint32_t lrank =
            lrank_before + static_cast<uint32_t>(std::popcount(
                               lword & ((uint64_t{1} << bit) - 1)));
        const uint64_t rbi = node - rv.base;
        const size_t rw = static_cast<size_t>(rbi) / 64;
        const uint32_t rrank =
            rcum[rw] + static_cast<uint32_t>(std::popcount(
                           rwords[rw] & ((uint64_t{1} << (rbi % 64)) - 1)));
        if (counters_ != nullptr) counters_->entries_scanned += 2;
        out->nodes.push_back(node);
        out->scores.push_back(
            model_ ? model_->JoinScore(
                         TokenEntryScore(lid, node,
                                         lentries[lrank].header.pos_count),
                         1,
                         TokenEntryScore(rid, node,
                                         rentries[rrank].header.pos_count),
                         1)
                   : 0.0);
      }
      lrank_before += static_cast<uint32_t>(std::popcount(lword));
    }
    // Both blocks are fully mined up to `hi`: seek past it. hi + 1 cannot
    // wrap (hi is a real block max_node, strictly below kInvalidNode).
    *a = lc.SeekEntry(hi + 1);
    *b = rc.SeekEntry(hi + 1);
    return true;
  }

  template <typename CursorT>
  StatusOr<NodeSet> ZigZag(CursorT lc, CursorT rc, TokenId lid, TokenId rid) {
    NodeSet out;
    NodeId a = lc.NextEntry();
    NodeId b = rc.NextEntry();
    while (a != kInvalidNode && b != kInvalidNode) {
      if constexpr (std::is_same_v<CursorT, BlockListCursor>) {
        // Two dense blocks intersect at word level and re-enter the loop
        // past them; any other shape falls through to entry zig-zag.
        if (TryDenseBlockAnd(lc, rc, lid, rid, &a, &b, &out)) continue;
      }
      if (a < b) {
        a = lc.SeekEntry(b);
      } else if (b < a) {
        b = rc.SeekEntry(a);
      } else {
        out.nodes.push_back(a);
        out.scores.push_back(
            model_ ? model_->JoinScore(
                         TokenEntryScore(lid, a, lc.pos_count()), 1,
                         TokenEntryScore(rid, b, rc.pos_count()), 1)
                   : 0.0);
        a = lc.NextEntry();
        b = rc.NextEntry();
      }
    }
    FTS_RETURN_IF_ERROR(lc.status());
    FTS_RETURN_IF_ERROR(rc.status());
    return out;
  }

  /// AND of an evaluated node set with a token list: the set drives, the
  /// token cursor seeks. `set_on_left` selects the JoinScore argument order
  /// so scores match the corresponding merge-path Intersect exactly.
  StatusOr<NodeSet> IntersectSetToken(const NodeSet& set, const std::string& tok,
                                      bool set_on_left) {
    const TokenId id = index_->LookupToken(tok);
    if (raw_oracle_ != nullptr) {
      return IntersectSetCursor(
          set, ListCursor(raw_oracle_->list(id), counters_, tombstones_), id,
          set_on_left);
    }
    return IntersectSetCursor(
        set,
        BlockListCursor(index_->block_list(id), counters_, cache_, tombstones_),
        id, set_on_left);
  }

  template <typename CursorT>
  StatusOr<NodeSet> IntersectSetCursor(const NodeSet& set, CursorT c, TokenId id,
                                       bool set_on_left) {
    NodeSet out;
    for (size_t i = 0; i < set.nodes.size(); ++i) {
      const NodeId n = c.SeekEntry(set.nodes[i]);
      if (n == kInvalidNode) break;
      if (n != set.nodes[i]) continue;
      out.nodes.push_back(n);
      if (model_ == nullptr) {
        out.scores.push_back(0.0);
        continue;
      }
      const double token_score = TokenEntryScore(id, n, c.pos_count());
      out.scores.push_back(set_on_left
                               ? model_->JoinScore(set.scores[i], 1, token_score, 1)
                               : model_->JoinScore(token_score, 1, set.scores[i], 1));
    }
    FTS_RETURN_IF_ERROR(c.status());
    return out;
  }

  NodeSet Complement(const NodeSet& in) {
    // The complement ranges over every context node, which costs a full
    // IL_ANY scan in the paper's model (Section 5.3). Tombstoned nodes are
    // outside the universe: deleted documents neither match nor complement.
    if (counters_) counters_->entries_scanned += index_->num_nodes();
    NodeSet out;
    size_t j = 0;
    for (NodeId n = 0; n < index_->num_nodes(); ++n) {
      if (tombstones_ != nullptr && tombstones_->Contains(n)) continue;
      while (j < in.nodes.size() && in.nodes[j] < n) ++j;
      if (j < in.nodes.size() && in.nodes[j] == n) continue;
      out.nodes.push_back(n);
      out.scores.push_back(model_ ? model_->NegateScore(0.0) : 0.0);
    }
    return out;
  }

  NodeSet Intersect(const NodeSet& l, const NodeSet& r) {
    NodeSet out;
    size_t i = 0, j = 0;
    while (i < l.nodes.size() && j < r.nodes.size()) {
      if (l.nodes[i] < r.nodes[j]) {
        ++i;
      } else if (r.nodes[j] < l.nodes[i]) {
        ++j;
      } else {
        out.nodes.push_back(l.nodes[i]);
        out.scores.push_back(
            model_ ? model_->JoinScore(l.scores[i], 1, r.scores[j], 1) : 0.0);
        ++i;
        ++j;
      }
    }
    return out;
  }

  NodeSet Union(const NodeSet& l, const NodeSet& r) {
    NodeSet out;
    size_t i = 0, j = 0;
    while (i < l.nodes.size() || j < r.nodes.size()) {
      if (j >= r.nodes.size() || (i < l.nodes.size() && l.nodes[i] < r.nodes[j])) {
        out.nodes.push_back(l.nodes[i]);
        out.scores.push_back(l.scores[i]);
        ++i;
      } else if (i >= l.nodes.size() || r.nodes[j] < l.nodes[i]) {
        out.nodes.push_back(r.nodes[j]);
        out.scores.push_back(r.scores[j]);
        ++j;
      } else {
        out.nodes.push_back(l.nodes[i]);
        out.scores.push_back(
            model_ ? model_->UnionBoth(l.scores[i], r.scores[j]) : 0.0);
        ++i;
        ++j;
      }
    }
    return out;
  }

  NodeSet Difference(const NodeSet& l, const NodeSet& r) {
    NodeSet out;
    size_t j = 0;
    for (size_t i = 0; i < l.nodes.size(); ++i) {
      while (j < r.nodes.size() && r.nodes[j] < l.nodes[i]) ++j;
      if (j < r.nodes.size() && r.nodes[j] == l.nodes[i]) continue;
      out.nodes.push_back(l.nodes[i]);
      out.scores.push_back(model_ ? model_->DifferenceScore(l.scores[i]) : 0.0);
    }
    return out;
  }

  const InvertedIndex* index_;
  const AlgebraScoreModel* model_;
  EvalCounters* counters_;
  CursorMode mode_;
  const RawPostingOracle* raw_oracle_;
  DecodedBlockCache* cache_;
  const Deadline* deadline_;
  const TombstoneSet* tombstones_;  // nullable; cursors filter deleted nodes
};

/// Collects the query's leaf list reads (token spellings plus ANY scans)
/// for the shared cache-attachment decision (DecodedBlockCache::ShouldAttach).
void CollectBoolLeaves(const LangExprPtr& e, std::vector<std::string>* tokens,
                       int* any_scans) {
  if (!e) return;
  if (e->kind() == LangExpr::Kind::kToken) {
    tokens->push_back(e->token());
    return;
  }
  if (e->kind() == LangExpr::Kind::kAny) {
    ++*any_scans;
    return;
  }
  // child() aliases left(), so left+right covers unary nodes too.
  CollectBoolLeaves(e->left(), tokens, any_scans);
  CollectBoolLeaves(e->right(), tokens, any_scans);
}

bool ShouldUseBoolCache(const LangExprPtr& e, const InvertedIndex& index) {
  std::vector<std::string> tokens;
  int any_scans = 0;
  CollectBoolLeaves(e, &tokens, &any_scans);
  return DecodedBlockCache::ShouldAttach(index, std::move(tokens), any_scans);
}

}  // namespace

StatusOr<QueryResult> BoolEngine::Evaluate(const LangExprPtr& query,
                                           ExecContext& ctx) const {
  if (!query) return Status::InvalidArgument("null query");
  FTS_RETURN_IF_ERROR(ctx.deadline().Check());
  LangExprPtr normalized = NormalizeSurface(query);

  const SegmentScoringStats* stats =
      segment_ != nullptr ? segment_->scoring : nullptr;
  const TombstoneSet* tombstones =
      segment_ != nullptr ? segment_->tombstones : nullptr;
  std::unique_ptr<AlgebraScoreModel> model;
  if (scoring_ == ScoringKind::kTfIdf) {
    std::vector<std::string> tokens;
    CollectSurfaceTokens(normalized, &tokens);
    model = std::make_unique<TfIdfScoreModel>(index_, std::move(tokens),
                                              nullptr, stats);
  } else if (scoring_ == ScoringKind::kProbabilistic) {
    model = std::make_unique<ProbabilisticScoreModel>(index_, stats);
  }

  QueryResult result;
  // The context's L1 attaches when some list is read twice and the working
  // set fits (single-scan queries skip the per-block bookkeeping), or
  // whenever a cross-query L2 is present — cursors then reach shared
  // blocks through it.
  DecodedBlockCache* cache =
      ctx.WantCache(ShouldUseBoolCache(normalized, *index_)) ? &ctx.l1_cache()
                                                             : nullptr;
  BoolEvaluator eval(index_, model.get(), &result.counters, mode_, raw_oracle_,
                     cache, &ctx.deadline(), tombstones);
  FTS_ASSIGN_OR_RETURN(NodeSet set, eval.Eval(normalized));
  result.nodes = std::move(set.nodes);
  if (scoring_ != ScoringKind::kNone) result.scores = std::move(set.scores);
  ctx.counters().MergeFrom(result.counters);
  return result;
}

}  // namespace fts
