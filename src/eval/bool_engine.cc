#include "eval/bool_engine.h"

#include <algorithm>

#include "lang/classify.h"
#include "scoring/probabilistic.h"
#include "scoring/tfidf.h"

namespace fts {

namespace {

/// A sorted node set with node-level scores.
struct NodeSet {
  std::vector<NodeId> nodes;
  std::vector<double> scores;
};

class BoolEvaluator {
 public:
  BoolEvaluator(const InvertedIndex* index, const AlgebraScoreModel* model,
                EvalCounters* counters)
      : index_(index), model_(model), counters_(counters) {}

  StatusOr<NodeSet> Eval(const LangExprPtr& e) {
    switch (e->kind()) {
      case LangExpr::Kind::kToken:
        return EvalToken(e->token());
      case LangExpr::Kind::kAny:
        return EvalAny();
      case LangExpr::Kind::kNot: {
        FTS_ASSIGN_OR_RETURN(NodeSet in, Eval(e->child()));
        return Complement(in);
      }
      case LangExpr::Kind::kAnd: {
        // AND NOT runs as a merge difference without touching IL_ANY.
        if (e->right()->kind() == LangExpr::Kind::kNot &&
            e->left()->kind() != LangExpr::Kind::kNot) {
          FTS_ASSIGN_OR_RETURN(NodeSet l, Eval(e->left()));
          FTS_ASSIGN_OR_RETURN(NodeSet r, Eval(e->right()->child()));
          return Difference(l, r);
        }
        if (e->left()->kind() == LangExpr::Kind::kNot &&
            e->right()->kind() != LangExpr::Kind::kNot) {
          FTS_ASSIGN_OR_RETURN(NodeSet l, Eval(e->right()));
          FTS_ASSIGN_OR_RETURN(NodeSet r, Eval(e->left()->child()));
          return Difference(l, r);
        }
        FTS_ASSIGN_OR_RETURN(NodeSet l, Eval(e->left()));
        FTS_ASSIGN_OR_RETURN(NodeSet r, Eval(e->right()));
        return Intersect(l, r);
      }
      case LangExpr::Kind::kOr: {
        FTS_ASSIGN_OR_RETURN(NodeSet l, Eval(e->left()));
        FTS_ASSIGN_OR_RETURN(NodeSet r, Eval(e->right()));
        return Union(l, r);
      }
      default:
        return Status::Unsupported(
            "BOOL cannot evaluate position variables or predicates");
    }
  }

 private:
  NodeSet EvalToken(const std::string& token) {
    NodeSet out;
    const PostingList* list = index_->list_for_text(token);
    const TokenId id = index_->LookupToken(token);
    ListCursor cursor(list, counters_);
    while (cursor.NextEntry() != kInvalidNode) {
      const NodeId n = cursor.current_node();
      out.nodes.push_back(n);
      out.scores.push_back(
          model_ ? model_->EntryScore(*index_, id, n, cursor.GetPositions().size())
                 : 0.0);
    }
    return out;
  }

  NodeSet EvalAny() {
    NodeSet out;
    ListCursor cursor(&index_->any_list(), counters_);
    const double s = model_ ? model_->AnyLeafScore() : 0.0;
    while (cursor.NextEntry() != kInvalidNode) {
      out.nodes.push_back(cursor.current_node());
      out.scores.push_back(s);
    }
    return out;
  }

  NodeSet Complement(const NodeSet& in) {
    // The complement ranges over every context node, which costs a full
    // IL_ANY scan in the paper's model (Section 5.3).
    if (counters_) counters_->entries_scanned += index_->num_nodes();
    NodeSet out;
    size_t j = 0;
    for (NodeId n = 0; n < index_->num_nodes(); ++n) {
      while (j < in.nodes.size() && in.nodes[j] < n) ++j;
      if (j < in.nodes.size() && in.nodes[j] == n) continue;
      out.nodes.push_back(n);
      out.scores.push_back(model_ ? model_->NegateScore(0.0) : 0.0);
    }
    return out;
  }

  NodeSet Intersect(const NodeSet& l, const NodeSet& r) {
    NodeSet out;
    size_t i = 0, j = 0;
    while (i < l.nodes.size() && j < r.nodes.size()) {
      if (l.nodes[i] < r.nodes[j]) {
        ++i;
      } else if (r.nodes[j] < l.nodes[i]) {
        ++j;
      } else {
        out.nodes.push_back(l.nodes[i]);
        out.scores.push_back(
            model_ ? model_->JoinScore(l.scores[i], 1, r.scores[j], 1) : 0.0);
        ++i;
        ++j;
      }
    }
    return out;
  }

  NodeSet Union(const NodeSet& l, const NodeSet& r) {
    NodeSet out;
    size_t i = 0, j = 0;
    while (i < l.nodes.size() || j < r.nodes.size()) {
      if (j >= r.nodes.size() || (i < l.nodes.size() && l.nodes[i] < r.nodes[j])) {
        out.nodes.push_back(l.nodes[i]);
        out.scores.push_back(l.scores[i]);
        ++i;
      } else if (i >= l.nodes.size() || r.nodes[j] < l.nodes[i]) {
        out.nodes.push_back(r.nodes[j]);
        out.scores.push_back(r.scores[j]);
        ++j;
      } else {
        out.nodes.push_back(l.nodes[i]);
        out.scores.push_back(
            model_ ? model_->UnionBoth(l.scores[i], r.scores[j]) : 0.0);
        ++i;
        ++j;
      }
    }
    return out;
  }

  NodeSet Difference(const NodeSet& l, const NodeSet& r) {
    NodeSet out;
    size_t j = 0;
    for (size_t i = 0; i < l.nodes.size(); ++i) {
      while (j < r.nodes.size() && r.nodes[j] < l.nodes[i]) ++j;
      if (j < r.nodes.size() && r.nodes[j] == l.nodes[i]) continue;
      out.nodes.push_back(l.nodes[i]);
      out.scores.push_back(model_ ? model_->DifferenceScore(l.scores[i]) : 0.0);
    }
    return out;
  }

  const InvertedIndex* index_;
  const AlgebraScoreModel* model_;
  EvalCounters* counters_;
};

}  // namespace

StatusOr<QueryResult> BoolEngine::Evaluate(const LangExprPtr& query) const {
  if (!query) return Status::InvalidArgument("null query");
  LangExprPtr normalized = NormalizeSurface(query);

  std::unique_ptr<AlgebraScoreModel> model;
  if (scoring_ == ScoringKind::kTfIdf) {
    std::vector<std::string> tokens;
    CollectSurfaceTokens(normalized, &tokens);
    model = std::make_unique<TfIdfScoreModel>(index_, std::move(tokens));
  } else if (scoring_ == ScoringKind::kProbabilistic) {
    model = std::make_unique<ProbabilisticScoreModel>(index_);
  }

  QueryResult result;
  BoolEvaluator eval(index_, model.get(), &result.counters);
  FTS_ASSIGN_OR_RETURN(NodeSet set, eval.Eval(normalized));
  result.nodes = std::move(set.nodes);
  if (scoring_ != ScoringKind::kNone) result.scores = std::move(set.scores);
  return result;
}

}  // namespace fts
