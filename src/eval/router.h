// Query router: classifies a query into the paper's complexity hierarchy
// (Figure 3) and dispatches it to the cheapest engine that can evaluate it,
// falling back to COMP if a specialized engine declines. Routing and
// per-segment evaluation live in Searcher (eval/searcher.h); the router is
// the single-index bridge — it wraps one InvertedIndex in a borrowed
// one-segment snapshot (IndexSnapshot::ForIndex) and delegates, so the
// pre-segment entry point keeps working unchanged over the snapshot read
// path. Services that follow live generations use Searcher directly.

#ifndef FTS_EVAL_ROUTER_H_
#define FTS_EVAL_ROUTER_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "eval/searcher.h"
#include "exec/exec_context.h"
#include "index/shared_block_cache.h"

namespace fts {

/// Construction knobs for a QueryRouter.
struct RouterOptions {
  ScoringKind scoring = ScoringKind::kNone;
  CursorMode mode = CursorMode::kAdaptive;
  /// Cross-query (L2) decoded-block cache shared by every query routed
  /// through this router, on every thread. Null keeps the pre-concurrency
  /// behavior: per-query L1 caching only. The router participates in the
  /// cache's ownership (shared_ptr), so a SearchService and its router can
  /// share one instance. Cache keys are process-unique list uids, so one
  /// cache may outlive index generations; stale entries age out of the LRU.
  std::shared_ptr<SharedBlockCache> shared_cache;
};

/// Routes queries over one externally owned index. The router is the
/// single-index production entry point, so its engines default to the
/// adaptive per-query planner (CursorMode::kAdaptive): each query reads df
/// statistics from the block-list headers and runs seek-based zig-zag
/// intersection when its driver list is selective, full sequential merges
/// otherwise (PlanFromDfs). Both forced modes remain available — pass
/// CursorMode::kSequential to reproduce the paper's access counts exactly,
/// or CursorMode::kSeek to force skip-seeking everywhere.
///
/// Thread safety: a router is immutable after construction and may
/// evaluate queries from many threads concurrently over its shared,
/// immutable index. Per-query state lives in the ExecContext — the
/// context-taking overloads require one context per thread; the
/// convenience overloads construct a fresh context per call and are
/// therefore unconditionally safe (see docs/threading.md).
class QueryRouter {
 public:
  /// `index` must outlive the router.
  QueryRouter(const InvertedIndex* index, RouterOptions options)
      : shared_cache_(std::move(options.shared_cache)),
        searcher_(IndexSnapshot::ForIndex(index),
                  SearcherOptions{options.scoring, options.mode}) {}

  QueryRouter(const InvertedIndex* index, ScoringKind scoring = ScoringKind::kNone,
              CursorMode mode = CursorMode::kAdaptive)
      : QueryRouter(index, RouterOptions{scoring, mode, nullptr}) {}

  /// Parses `query` as COMP (the superset language) and evaluates it on the
  /// cheapest applicable engine, under a fresh per-call context wired to
  /// the router's shared cache.
  StatusOr<RoutedResult> Evaluate(std::string_view query) const;

  /// As above, under caller-provided per-query state (single-threaded
  /// context; one per thread).
  StatusOr<RoutedResult> Evaluate(std::string_view query, ExecContext& ctx) const;

  /// Ranked convenience: evaluates `query` with ctx.top_k() = k under a
  /// fresh per-call context, returning only the k best results in rank
  /// order (descending score, ties by ascending node id). Callers holding
  /// their own context set ctx.set_top_k(k) and use Evaluate directly —
  /// the top_k request rides in the context, so every entry point ranks.
  StatusOr<RoutedResult> EvaluateTopK(std::string_view query, size_t k) const;

  /// Routes an already-parsed query under a fresh per-call context.
  StatusOr<RoutedResult> EvaluateParsed(const LangExprPtr& query) const;

  /// Routes an already-parsed query under caller-provided state.
  StatusOr<RoutedResult> EvaluateParsed(const LangExprPtr& query,
                                        ExecContext& ctx) const;

  /// A context wired to this router's shared cache — what the convenience
  /// overloads construct per call, and what service workers construct once
  /// and reuse.
  ExecContext MakeContext() const {
    ExecOptions options;
    options.shared_cache = shared_cache_.get();
    return ExecContext(options);
  }

  SharedBlockCache* shared_cache() const { return shared_cache_.get(); }

  const BoolEngine& bool_engine() const { return searcher_.bool_engine(); }
  const PpredEngine& ppred_engine() const { return searcher_.ppred_engine(); }
  const NpredEngine& npred_engine() const { return searcher_.npred_engine(); }
  const CompEngine& comp_engine() const { return searcher_.comp_engine(); }

 private:
  std::shared_ptr<SharedBlockCache> shared_cache_;
  Searcher searcher_;
};

}  // namespace fts

#endif  // FTS_EVAL_ROUTER_H_
