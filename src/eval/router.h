// Query router: classifies a query into the paper's complexity hierarchy
// (Figure 3) and dispatches it to the cheapest engine that can evaluate it,
// falling back to COMP if a specialized engine declines. This is the
// top-level entry point applications use (see examples/).

#ifndef FTS_EVAL_ROUTER_H_
#define FTS_EVAL_ROUTER_H_

#include <string>
#include <string_view>

#include "eval/bool_engine.h"
#include "eval/comp_engine.h"
#include "eval/engine.h"
#include "eval/npred_engine.h"
#include "eval/ppred_engine.h"
#include "lang/classify.h"
#include "lang/parser.h"

namespace fts {

/// A routed evaluation outcome.
struct RoutedResult {
  QueryResult result;
  LanguageClass language_class;
  std::string engine;  ///< engine that produced the result
};

/// Owns one engine of each kind over a shared index and routes queries.
/// The router is the production entry point, so its engines default to the
/// adaptive per-query planner (CursorMode::kAdaptive): each query reads df
/// statistics from the block-list headers and runs seek-based zig-zag
/// intersection when its driver list is selective, full sequential merges
/// otherwise (PlanFromDfs). Both forced modes remain available — pass
/// CursorMode::kSequential to reproduce the paper's access counts exactly,
/// or CursorMode::kSeek to force skip-seeking everywhere.
class QueryRouter {
 public:
  /// `index` must outlive the router.
  QueryRouter(const InvertedIndex* index, ScoringKind scoring = ScoringKind::kNone,
              CursorMode mode = CursorMode::kAdaptive)
      : bool_engine_(index, scoring, mode),
        ppred_engine_(index, scoring, mode),
        npred_engine_(index, scoring,
                      NpredOrderingMode::kNecessaryPartialOrders, mode),
        comp_engine_(index, scoring) {}

  /// Parses `query` as COMP (the superset language) and evaluates it on the
  /// cheapest applicable engine.
  StatusOr<RoutedResult> Evaluate(std::string_view query) const;

  /// Routes an already-parsed query.
  StatusOr<RoutedResult> EvaluateParsed(const LangExprPtr& query) const;

  const BoolEngine& bool_engine() const { return bool_engine_; }
  const PpredEngine& ppred_engine() const { return ppred_engine_; }
  const NpredEngine& npred_engine() const { return npred_engine_; }
  const CompEngine& comp_engine() const { return comp_engine_; }

 private:
  BoolEngine bool_engine_;
  PpredEngine ppred_engine_;
  NpredEngine npred_engine_;
  CompEngine comp_engine_;
};

}  // namespace fts

#endif  // FTS_EVAL_ROUTER_H_
