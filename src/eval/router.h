// Query router: classifies a query into the paper's complexity hierarchy
// (Figure 3) and dispatches it to the cheapest engine that can evaluate it,
// falling back to COMP if a specialized engine declines. This is the
// top-level entry point applications use (see examples/).

#ifndef FTS_EVAL_ROUTER_H_
#define FTS_EVAL_ROUTER_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "eval/bool_engine.h"
#include "eval/comp_engine.h"
#include "eval/engine.h"
#include "eval/npred_engine.h"
#include "eval/ppred_engine.h"
#include "exec/exec_context.h"
#include "index/shared_block_cache.h"
#include "lang/classify.h"
#include "lang/parser.h"

namespace fts {

/// A routed evaluation outcome.
struct RoutedResult {
  QueryResult result;
  LanguageClass language_class;
  std::string engine;  ///< engine that produced the result
};

/// Construction knobs for a QueryRouter.
struct RouterOptions {
  ScoringKind scoring = ScoringKind::kNone;
  CursorMode mode = CursorMode::kAdaptive;
  /// Cross-query (L2) decoded-block cache shared by every query routed
  /// through this router, on every thread. Null keeps the pre-concurrency
  /// behavior: per-query L1 caching only. The router participates in the
  /// cache's ownership (shared_ptr), so a SearchService and its router can
  /// share one instance. Attach one cache per loaded index generation —
  /// never reuse across index reloads (keys are list pointers).
  std::shared_ptr<SharedBlockCache> shared_cache;
};

/// Owns one engine of each kind over a shared index and routes queries.
/// The router is the production entry point, so its engines default to the
/// adaptive per-query planner (CursorMode::kAdaptive): each query reads df
/// statistics from the block-list headers and runs seek-based zig-zag
/// intersection when its driver list is selective, full sequential merges
/// otherwise (PlanFromDfs). Both forced modes remain available — pass
/// CursorMode::kSequential to reproduce the paper's access counts exactly,
/// or CursorMode::kSeek to force skip-seeking everywhere.
///
/// Thread safety: a router is immutable after construction and may
/// evaluate queries from many threads concurrently over its shared,
/// immutable index. Per-query state lives in the ExecContext — the
/// context-taking overloads require one context per thread; the
/// convenience overloads construct a fresh context per call and are
/// therefore unconditionally safe (see docs/threading.md).
class QueryRouter {
 public:
  /// `index` must outlive the router.
  QueryRouter(const InvertedIndex* index, RouterOptions options)
      : shared_cache_(std::move(options.shared_cache)),
        bool_engine_(index, options.scoring, options.mode),
        ppred_engine_(index, options.scoring, options.mode),
        npred_engine_(index, options.scoring,
                      NpredOrderingMode::kNecessaryPartialOrders, options.mode),
        comp_engine_(index, options.scoring) {}

  QueryRouter(const InvertedIndex* index, ScoringKind scoring = ScoringKind::kNone,
              CursorMode mode = CursorMode::kAdaptive)
      : QueryRouter(index, RouterOptions{scoring, mode, nullptr}) {}

  /// Parses `query` as COMP (the superset language) and evaluates it on the
  /// cheapest applicable engine, under a fresh per-call context wired to
  /// the router's shared cache.
  StatusOr<RoutedResult> Evaluate(std::string_view query) const;

  /// As above, under caller-provided per-query state (single-threaded
  /// context; one per thread).
  StatusOr<RoutedResult> Evaluate(std::string_view query, ExecContext& ctx) const;

  /// Routes an already-parsed query under a fresh per-call context.
  StatusOr<RoutedResult> EvaluateParsed(const LangExprPtr& query) const;

  /// Routes an already-parsed query under caller-provided state.
  StatusOr<RoutedResult> EvaluateParsed(const LangExprPtr& query,
                                        ExecContext& ctx) const;

  /// A context wired to this router's shared cache — what the convenience
  /// overloads construct per call, and what service workers construct once
  /// and reuse.
  ExecContext MakeContext() const {
    ExecOptions options;
    options.shared_cache = shared_cache_.get();
    return ExecContext(options);
  }

  SharedBlockCache* shared_cache() const { return shared_cache_.get(); }

  const BoolEngine& bool_engine() const { return bool_engine_; }
  const PpredEngine& ppred_engine() const { return ppred_engine_; }
  const NpredEngine& npred_engine() const { return npred_engine_; }
  const CompEngine& comp_engine() const { return comp_engine_; }

 private:
  std::shared_ptr<SharedBlockCache> shared_cache_;
  BoolEngine bool_engine_;
  PpredEngine ppred_engine_;
  NpredEngine npred_engine_;
  CompEngine comp_engine_;
};

}  // namespace fts

#endif  // FTS_EVAL_ROUTER_H_
