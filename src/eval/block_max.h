// Block-max top-k evaluation: ranked retrieval with score-based early
// termination (the Block-Max WAND / MaxScore family) over the block-
// compressed skip-seekable lists.
//
// A full scored evaluation decodes every candidate block and scores every
// matching node, then keeps the top k. When k is small that is almost all
// wasted work: once the top-k heap is full, a candidate can only enter by
// beating the heap's weakest score, and whole blocks whose impact upper
// bounds (from the per-block max_tf in the v4 skip directory) cannot beat
// that threshold need never be decoded. This evaluator walks candidates in
// ascending node-id order, maintains a per-expression score upper bound
// from the leaves' shallow block frontiers, and hops the document ranges —
// and therefore the blocks — that provably cannot change the result.
//
// Exactness contract: the top-k result (nodes, scores, rank order) is
// bit-identical to full evaluation followed by TopK. Deep evaluation walks
// the original binary expression tree with exactly the score expressions
// BoolEvaluator uses (EntryScore / JoinScore(l,1,r,1) / UnionBoth), so a
// scored node gets the same IEEE double either way; skipping is sound
// because candidates arrive in ascending id order, so a candidate whose
// upper bound is <= the heap threshold could never enter the heap (equal
// scores lose the tie-break to the smaller ids already present).
//
// Lists loaded from v2/v3 files carry no max_tf (has_block_max() false);
// their blocks get an unbounded (+inf) upper bound, which disables
// skipping for that list while remaining exact — graceful fallback to
// full-work evaluation inside the same loop.

#ifndef FTS_EVAL_BLOCK_MAX_H_
#define FTS_EVAL_BLOCK_MAX_H_

#include "common/metrics.h"
#include "common/status.h"
#include "eval/engine.h"
#include "exec/exec_context.h"
#include "index/inverted_index.h"
#include "lang/ast.h"
#include "scoring/score_model.h"
#include "scoring/topk.h"

namespace fts {

/// True when `normalized` (a NormalizeSurface'd surface query) is a pure
/// token / AND / OR tree — the language class this evaluator handles.
/// ANY and NOT have no per-block impact bounds (ANY's "list" is every
/// node; NOT inverts absence), so queries containing them take the full
/// evaluation path.
bool BlockMaxSupports(const LangExprPtr& normalized);

/// Evaluates `normalized` against one index (segment), feeding every
/// result that could enter the top k into `acc` as (base + node, score).
/// `model` must be the exact score model a full BOOL evaluation of this
/// query would use (same stats, same query tokens) — scores are computed
/// with it, and its EntryScoreUpperBound supplies the block bounds.
/// `runtime` provides segment tombstones (scoring stats are already baked
/// into `model`); may be null. Counters (decode work plus
/// blocks_skipped_by_score) are merged into `ctx.counters()` and, when
/// `query_counters` is non-null, into it as well. Returns
/// DeadlineExceeded when ctx's deadline expires mid-loop and propagates
/// sticky cursor decode errors (first-touch validation failures).
Status EvaluateBlockMaxTopK(const InvertedIndex& index,
                            const LangExprPtr& normalized,
                            const AlgebraScoreModel& model,
                            const SegmentRuntime* runtime, ExecContext& ctx,
                            NodeId base, TopKAccumulator& acc,
                            EvalCounters* query_counters = nullptr);

}  // namespace fts

#endif  // FTS_EVAL_BLOCK_MAX_H_
