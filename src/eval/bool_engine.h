// BOOL evaluation (paper Section 5.3): sort-merge of inverted-list node
// ids. AND NOT pairs evaluate as list differences (the BOOL-NONEG path);
// free-standing NOT and ANY fall back to the node universe, which the cost
// model charges as an IL_ANY scan (cnodes entries). Scores follow the
// Section 3 per-operator formulas applied at node granularity.

#ifndef FTS_EVAL_BOOL_ENGINE_H_
#define FTS_EVAL_BOOL_ENGINE_H_

#include <memory>

#include "eval/engine.h"
#include "scoring/score_model.h"

namespace fts {

/// Merge-based evaluator for the BOOL / BOOL-NONEG languages over the
/// block-resident lists. In seek mode AND of token operands runs as a
/// zig-zag intersection, decoding only the blocks the join lands in;
/// sequential mode reproduces the paper's full-scan merges exactly.
class BoolEngine : public Engine {
 public:
  /// `index` must outlive the engine; `segment` (nullable) carries the
  /// tombstones and global scoring stats when `index` is one segment of a
  /// snapshot (see SegmentRuntime).
  BoolEngine(const InvertedIndex* index, ScoringKind scoring,
             CursorMode mode = CursorMode::kSequential,
             const SegmentRuntime* segment = nullptr)
      : index_(index), scoring_(scoring), mode_(mode), segment_(segment) {}

  std::string_view name() const override { return "BOOL"; }

  using Engine::Evaluate;
  StatusOr<QueryResult> Evaluate(const LangExprPtr& query,
                                 ExecContext& ctx) const override;

  CursorMode mode() const { return mode_; }

  /// Differential-test seam: evaluate over `oracle`'s raw lists (same
  /// merge/score code, raw cursors) instead of the block-resident ones.
  /// `oracle` must outlive the engine; pass nullptr to detach.
  void set_raw_oracle_for_test(const RawPostingOracle* oracle) {
    raw_oracle_ = oracle;
  }

 private:
  const InvertedIndex* index_;
  ScoringKind scoring_;
  CursorMode mode_;
  const SegmentRuntime* segment_;
  const RawPostingOracle* raw_oracle_ = nullptr;
};

}  // namespace fts

#endif  // FTS_EVAL_BOOL_ENGINE_H_
