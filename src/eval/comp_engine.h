// COMP evaluation (paper Section 5.4): translate the query to the calculus,
// compile to the algebra, and evaluate operators bottom-up on materialized
// full-text relations. Complete for the whole language; polynomial in the
// data and exponential in the query (the per-node join products).

#ifndef FTS_EVAL_COMP_ENGINE_H_
#define FTS_EVAL_COMP_ENGINE_H_

#include "eval/engine.h"

namespace fts {

/// Materialized-algebra evaluator; the completeness baseline every other
/// engine is differentially tested against.
class CompEngine : public Engine {
 public:
  /// `index` must outlive the engine; `segment` (nullable) carries the
  /// tombstones and global scoring stats when `index` is one segment of a
  /// snapshot (see SegmentRuntime).
  CompEngine(const InvertedIndex* index, ScoringKind scoring,
             const SegmentRuntime* segment = nullptr)
      : index_(index), scoring_(scoring), segment_(segment) {}

  std::string_view name() const override { return "COMP"; }

  using Engine::Evaluate;
  StatusOr<QueryResult> Evaluate(const LangExprPtr& query,
                                 ExecContext& ctx) const override;

  /// Differential-test seam: evaluate the identical algebra plan with leaf
  /// scans over `oracle`'s raw lists instead of the block-resident ones.
  void set_raw_oracle_for_test(const RawPostingOracle* oracle) {
    raw_oracle_ = oracle;
  }

 private:
  const InvertedIndex* index_;
  ScoringKind scoring_;
  const SegmentRuntime* segment_;
  const RawPostingOracle* raw_oracle_ = nullptr;
};

}  // namespace fts

#endif  // FTS_EVAL_COMP_ENGINE_H_
