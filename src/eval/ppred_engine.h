// PPRED evaluation (paper Section 5.5): compile the query to an algebra
// plan and run it as a single pipelined pass over the inverted lists using
// the PosCursor operators (Algorithms 1-5). Handles the PPRED language
// class — positive predicates, AND/OR/SOME, and AND NOT of closed
// subqueries — in time linear in the query-token inverted lists.

#ifndef FTS_EVAL_PPRED_ENGINE_H_
#define FTS_EVAL_PPRED_ENGINE_H_

#include "eval/engine.h"

namespace fts {

/// Single-scan pipelined evaluator for the PPRED class. Returns Unsupported
/// for queries whose plans need IL_ANY or general predicates. In seek mode
/// the pipeline's zig-zag joins skip over the block-compressed lists via
/// SeekEntry instead of stepping entry by entry.
class PpredEngine : public Engine {
 public:
  /// `index` must outlive the engine; `segment` (nullable) carries the
  /// tombstones and global scoring stats when `index` is one segment of a
  /// snapshot (see SegmentRuntime).
  PpredEngine(const InvertedIndex* index, ScoringKind scoring,
              CursorMode mode = CursorMode::kSequential,
              const SegmentRuntime* segment = nullptr)
      : index_(index), scoring_(scoring), mode_(mode), segment_(segment) {}

  std::string_view name() const override { return "PPRED"; }

  using Engine::Evaluate;
  StatusOr<QueryResult> Evaluate(const LangExprPtr& query,
                                 ExecContext& ctx) const override;

  CursorMode mode() const { return mode_; }

  /// Whether phrase/NEAR-shaped plans may route to the pair index
  /// (src/eval/pair_plan.h). Set once at construction time, like the
  /// constructor arguments; the Searcher threads it from SearcherOptions.
  void set_pair_routing(PairRouting routing) { pair_routing_ = routing; }
  PairRouting pair_routing() const { return pair_routing_; }

  /// Differential-test seam: run the identical pipeline over `oracle`'s raw
  /// lists instead of the block-resident ones. Pass nullptr to detach.
  /// While attached, pair routing never fires — the oracle exercises the
  /// position pipeline by definition.
  void set_raw_oracle_for_test(const RawPostingOracle* oracle) {
    raw_oracle_ = oracle;
  }

 private:
  const InvertedIndex* index_;
  ScoringKind scoring_;
  CursorMode mode_;
  const SegmentRuntime* segment_;
  PairRouting pair_routing_ = PairRouting::kAuto;
  const RawPostingOracle* raw_oracle_ = nullptr;
};

}  // namespace fts

#endif  // FTS_EVAL_PPRED_ENGINE_H_
