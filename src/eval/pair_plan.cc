#include "eval/pair_plan.h"

#include <algorithm>
#include <cstdint>

#include "index/block_posting_list.h"
#include "index/decoded_block_cache.h"

namespace fts {

bool MatchPairablePlan(const FtaExprPtr& plan, PairPlanMatch* out) {
  // Projects above the select only narrow position columns; the node set
  // and node-level scores flow through them unchanged.
  const FtaExpr* p = plan.get();
  while (p != nullptr && p->kind() == FtaExpr::Kind::kProject) {
    p = p->child().get();
  }
  if (p == nullptr || p->kind() != FtaExpr::Kind::kSelect) return false;
  const AlgebraPredicateCall& call = p->pred();
  if (call.pred == nullptr) return false;
  const std::string_view name = call.pred->name();
  if (name != "distance" && name != "odistance") return false;
  if (call.cols.size() != 2 || call.consts.size() != 1) return false;

  // Compose the Project column maps below the select, so `map` tracks
  // which child columns supply the predicate's two position arguments.
  int map[2] = {call.cols[0], call.cols[1]};
  const FtaExpr* q = p->child().get();
  while (q != nullptr && q->kind() == FtaExpr::Kind::kProject) {
    const std::vector<int>& keep = q->project_cols();
    for (int& c : map) {
      if (c < 0 || static_cast<size_t>(c) >= keep.size()) return false;
      c = keep[c];
    }
    q = q->child().get();
  }
  if (q == nullptr || q->kind() != FtaExpr::Kind::kJoin) return false;
  const FtaExpr* l = q->left().get();
  const FtaExpr* r = q->right().get();
  if (l == nullptr || l->kind() != FtaExpr::Kind::kToken) return false;
  if (r == nullptr || r->kind() != FtaExpr::Kind::kToken) return false;
  if (l->num_cols() != 1 || r->num_cols() != 1) return false;
  // The two predicate arguments must be exactly the two leaf position
  // columns, one each (join schema: col 0 = left token, col 1 = right).
  if (!((map[0] == 0 && map[1] == 1) || (map[0] == 1 && map[1] == 0)))
    return false;
  // A repeated token ((t, t) at some distance) is never stored in the pair
  // index; the pipeline handles it.
  if (l->token() == r->token()) return false;

  out->token_a = map[0] == 0 ? l->token() : r->token();
  out->token_b = map[0] == 0 ? r->token() : l->token();
  out->pred = call.pred;
  out->consts = call.consts;
  return true;
}

namespace {

/// Global df when the snapshot exchanged one for `key`, else `local`.
double GlobalDf(const SegmentScoringStats* stats, const std::string& key,
                double local) {
  if (stats == nullptr || stats->df_by_text == nullptr) return local;
  auto it = stats->df_by_text->find(key);
  return it == stats->df_by_text->end() ? local
                                        : static_cast<double>(it->second);
}

}  // namespace

bool PlanPairRoute(const PairPlanMatch& match, const InvertedIndex& index,
                   const SegmentScoringStats* stats, CursorMode mode,
                   PairRouting routing, const AdaptivePlannerOptions& opts,
                   PairRoute* out) {
  (void)opts;
  if (routing == PairRouting::kOff) return false;
  const PairIndex* pair = index.pair_index();
  if (pair == nullptr) return false;
  if (match.consts[0] < 0 ||
      match.consts[0] > static_cast<int64_t>(pair->max_distance()))
    return false;
  if (routing == PairRouting::kAuto && mode != CursorMode::kAdaptive)
    return false;

  const TokenId id_a = index.LookupToken(match.token_a);
  const TokenId id_b = index.LookupToken(match.token_b);
  // An OOV side already makes the pipeline terminate on an empty driver
  // list; nothing for the pair index to win.
  if (id_a == kInvalidToken || id_b == kInvalidToken) return false;

  const PairIndex::Lookup lookup = pair->Find(id_a, id_b);
  if (!lookup.eligible) return false;

  out->lookup = lookup;
  out->id_a = id_a;
  out->id_b = id_b;
  out->empty = lookup.list == nullptr;
  // An absent key for an eligible pair proves emptiness — the cheapest
  // possible plan, under any routing policy.
  if (out->empty || routing == PairRouting::kForce) return true;

  // kAuto cost comparison, in decoded-triple units from the block-list
  // headers. The pair plan walks df_pair entries, each with one packed tf
  // header plus its records; the pipeline decodes the driver's entries and
  // both sides' position lists. Per-entry averages come from the local
  // headers, dfs from the snapshot-global exchange when present.
  const double pair_local =
      static_cast<double>(lookup.list->num_entries());
  const double recs_per_entry =
      static_cast<double>(lookup.list->total_positions()) / pair_local;
  const std::string& first_text =
      index.token_text(lookup.swapped ? id_b : id_a);
  const std::string& second_text =
      index.token_text(lookup.swapped ? id_a : id_b);
  const double df_pair = GlobalDf(
      stats, PairIndex::StatsKey(first_text, second_text), pair_local);
  const double pair_cost = df_pair * recs_per_entry;

  const BlockPostingList* la = index.block_list(id_a);
  const BlockPostingList* lb = index.block_list(id_b);
  if (la == nullptr || lb == nullptr || la->empty() || lb->empty())
    return false;  // empty driver: pipeline terminates instantly
  const double dfa_local = static_cast<double>(la->num_entries());
  const double dfb_local = static_cast<double>(lb->num_entries());
  const double df_a = GlobalDf(stats, match.token_a, dfa_local);
  const double df_b = GlobalDf(stats, match.token_b, dfb_local);
  const double pos_per_a =
      static_cast<double>(la->total_positions()) / dfa_local;
  const double pos_per_b =
      static_cast<double>(lb->total_positions()) / dfb_local;
  const double pipeline_cost =
      std::min(df_a, df_b) * (1.0 + pos_per_a + pos_per_b);
  return pair_cost <= pipeline_cost;
}

Status EvaluatePairPlan(const PairPlanMatch& match, const PairRoute& route,
                        const InvertedIndex& index,
                        const AlgebraScoreModel* model, EvalCounters* counters,
                        DecodedBlockCache* cache, const Deadline* deadline,
                        const TombstoneSet* tombstones,
                        std::vector<NodeId>* nodes,
                        std::vector<double>* scores) {
  ++counters->pair_seeks;
  if (route.empty) return Status::OK();

  const uint32_t window = index.pair_index()->max_distance() + 1;
  BlockListCursor cur(route.lookup.list, counters, cache, tombstones);
  PositionInfo args[2];
  size_t since_check = 0;
  for (NodeId n = cur.NextEntry(); n != kInvalidNode; n = cur.NextEntry()) {
    if (deadline != nullptr && ++since_check == 4096) {
      since_check = 0;
      FTS_RETURN_IF_ERROR(deadline->Check());
    }
    ++counters->pair_entries_decoded;
    const std::span<const PositionInfo> ps = cur.GetPositions();
    if (!cur.status().ok()) return cur.status();
    if (ps.size() < 2) {
      return Status::Corruption("pair-list entry without records");
    }
    // positions[0] packs the two per-node term frequencies in storage
    // (first, second) order; every later triple is one co-occurrence.
    const uint32_t tf_first = ps[0].offset;
    const uint32_t tf_second = ps[0].sentence;
    if (tf_first == 0 || tf_second == 0) {
      return Status::Corruption("pair-list entry with zero term frequency");
    }
    bool found = false;
    uint32_t wa = 0, wb = 0;  // witness = lex-min satisfying (off_a, off_b)
    for (size_t k = 1; k < ps.size(); ++k) {
      const int64_t off_first = ps[k].offset;
      const int32_t delta = PairIndex::UnZigZag(ps[k].sentence);
      if (delta == 0 || delta > static_cast<int32_t>(window) ||
          delta < -static_cast<int32_t>(window)) {
        return Status::Corruption("pair-list record delta out of window");
      }
      const int64_t off_second = off_first + delta;
      if (off_second < 0 || off_second > UINT32_MAX) {
        return Status::Corruption("pair-list record offset out of range");
      }
      const uint32_t off_a =
          route.lookup.swapped ? static_cast<uint32_t>(off_second)
                               : static_cast<uint32_t>(off_first);
      const uint32_t off_b =
          route.lookup.swapped ? static_cast<uint32_t>(off_first)
                               : static_cast<uint32_t>(off_second);
      args[0] = {off_a, 0, 0};
      args[1] = {off_b, 0, 0};
      ++counters->predicate_evals;
      if (!match.pred->Eval(args, match.consts)) continue;
      if (!found || off_a < wa || (off_a == wa && off_b < wb)) {
        found = true;
        wa = off_a;
        wb = off_b;
      }
      // Records sort by (off_first, off_second): when the query reads the
      // key in storage order, the first satisfying record is already the
      // lexicographic minimum. Swapped queries reverse the coordinates,
      // so the minimum can appear anywhere and the scan must finish.
      if (!route.lookup.swapped) break;
    }
    if (!found) continue;
    nodes->push_back(n);
    if (model != nullptr) {
      const uint32_t tf_a = route.lookup.swapped ? tf_second : tf_first;
      const uint32_t tf_b = route.lookup.swapped ? tf_first : tf_second;
      const double joined =
          model->JoinScore(model->EntryScore(index, route.id_a, n, tf_a), 1,
                           model->EntryScore(index, route.id_b, n, tf_b), 1);
      args[0] = {wa, 0, 0};
      args[1] = {wb, 0, 0};
      scores->push_back(
          model->SelectScore(joined, *match.pred, args, match.consts));
    }
  }
  return cur.status();
}

StatusOr<bool> TryEvaluatePairPlan(const FtaExprPtr& plan,
                                   const InvertedIndex& index,
                                   const AlgebraScoreModel* model,
                                   CursorMode mode, PairRouting routing,
                                   const SegmentRuntime* segment,
                                   ExecContext& ectx, QueryResult* result) {
  PairPlanMatch match;
  if (!MatchPairablePlan(plan, &match)) return false;
  PairRoute route;
  const SegmentScoringStats* stats =
      segment != nullptr ? segment->scoring : nullptr;
  if (!PlanPairRoute(match, index, stats, mode, routing, {}, &route)) {
    return false;
  }
  DecodedBlockCache* cache =
      ectx.WantCache(/*repeated_scans=*/false) ? &ectx.l1_cache() : nullptr;
  const TombstoneSet* tombstones =
      segment != nullptr ? segment->tombstones : nullptr;
  FTS_RETURN_IF_ERROR(EvaluatePairPlan(
      match, route, index, model, &result->counters, cache, &ectx.deadline(),
      tombstones, &result->nodes, &result->scores));
  return true;
}

}  // namespace fts
