#include "eval/ppred_engine.h"

#include <functional>
#include <memory>

#include "calculus/analysis.h"
#include "compile/ftc_to_fta.h"
#include "eval/pair_plan.h"
#include "eval/pos_cursor.h"
#include "index/decoded_block_cache.h"
#include "lang/translate.h"
#include "scoring/probabilistic.h"
#include "scoring/tfidf.h"

namespace fts {

StatusOr<QueryResult> PpredEngine::Evaluate(const LangExprPtr& query,
                                            ExecContext& ectx) const {
  if (!query) return Status::InvalidArgument("null query");
  FTS_RETURN_IF_ERROR(ectx.deadline().Check());
  FTS_ASSIGN_OR_RETURN(CalcQuery calc, TranslateToCalculus(NormalizeSurface(query)));
  FTS_ASSIGN_OR_RETURN(FtaExprPtr plan, CompileQuery(calc));

  // PPRED additionally requires every selection predicate to be positive;
  // negative predicates belong to NPRED (Section 5.6).
  std::function<Status(const FtaExprPtr&)> check = [&](const FtaExprPtr& p) -> Status {
    if (!p) return Status::OK();
    if (p->kind() == FtaExpr::Kind::kSelect &&
        p->pred().pred->cls() != PredicateClass::kPositive) {
      return Status::Unsupported("PPRED cannot evaluate predicate '" +
                                 std::string(p->pred().pred->name()) + "'");
    }
    FTS_RETURN_IF_ERROR(check(p->left()));
    return check(p->right());
  };
  FTS_RETURN_IF_ERROR(check(plan));

  const SegmentScoringStats* stats =
      segment_ != nullptr ? segment_->scoring : nullptr;
  std::unique_ptr<AlgebraScoreModel> model;
  if (scoring_ == ScoringKind::kTfIdf) {
    auto token_set = CollectTokens(calc.expr);
    model = std::make_unique<TfIdfScoreModel>(
        index_, std::vector<std::string>(token_set.begin(), token_set.end()),
        nullptr, stats);
  } else if (scoring_ == ScoringKind::kProbabilistic) {
    model = std::make_unique<ProbabilisticScoreModel>(index_, stats);
  }

  // Multi-index planning: a phrase/NEAR-shaped plan may be answerable from
  // one auxiliary pair list instead of the position pipeline. Never under
  // the raw oracle, whose whole point is exercising the pipeline.
  if (raw_oracle_ == nullptr) {
    QueryResult routed;
    FTS_ASSIGN_OR_RETURN(
        bool handled,
        TryEvaluatePairPlan(plan, *index_, model.get(), mode_, pair_routing_,
                            segment_, ectx, &routed));
    if (handled) {
      ectx.counters().MergeFrom(routed.counters);
      return routed;
    }
  }

  QueryResult result;
  // The context's L1 attaches when a list is scanned twice and the working
  // set fits, or whenever an L2 is present (see BoolEngine::Evaluate).
  DecodedBlockCache* cache =
      ectx.WantCache(ShouldUseDecodedBlockCache(plan, *index_))
          ? &ectx.l1_cache()
          : nullptr;
  Status decode_status;  // set by leaf scans on first-touch decode failure
  PipelineContext ctx{index_,      model.get(),
                      &result.counters,
                      PlanPipelineCursorMode(mode_, plan, *index_),
                      raw_oracle_, cache,
                      &decode_status,
                      &ectx.deadline(),
                      segment_ != nullptr ? segment_->tombstones : nullptr};
  FTS_ASSIGN_OR_RETURN(std::unique_ptr<PosCursor> cursor, BuildPipeline(plan, ctx));
  DrainPipeline(cursor.get(), scoring_ != ScoringKind::kNone, &result.nodes,
                &result.scores, ctx);
  FTS_RETURN_IF_ERROR(decode_status);
  ectx.counters().MergeFrom(result.counters);
  return result;
}

}  // namespace fts
