// Engine interface shared by the four evaluation strategies of paper
// Section 5 (BOOL merges, pipelined PPRED, per-ordering NPRED, materialized
// COMP). Engines take parsed surface queries, return matching node ids with
// optional scores, and report machine-independent cost counters.

#ifndef FTS_EVAL_ENGINE_H_
#define FTS_EVAL_ENGINE_H_

#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "index/inverted_index.h"
#include "lang/ast.h"

namespace fts {

/// Which Section 3 scoring method an engine applies (kNone disables
/// scoring entirely).
enum class ScoringKind {
  kNone,
  kTfIdf,
  kProbabilistic,
};

const char* ScoringKindToString(ScoringKind kind);

/// How engines traverse inverted lists.
enum class CursorMode {
  /// Strictly sequential nextEntry()/getPositions(), the paper's Section
  /// 5.1.2 access model. Operation counts reproduce the paper's figures.
  kSequential,
  /// Skip-based seeking over the block-compressed lists: zig-zag joins call
  /// SeekEntry instead of stepping, decoding only the blocks they land in.
  /// Results are identical to kSequential; only the access pattern changes.
  kSeek,
};

const char* CursorModeToString(CursorMode mode);

/// Result of one query evaluation.
struct QueryResult {
  /// Matching context nodes, ascending.
  std::vector<NodeId> nodes;
  /// Scores parallel to `nodes`; empty when scoring is kNone.
  std::vector<double> scores;
  /// Evaluation cost counters for this query.
  EvalCounters counters;
};

/// A query evaluation strategy over one InvertedIndex.
class Engine {
 public:
  virtual ~Engine() = default;

  /// Engine name as used in the paper's figures (BOOL, PPRED, NPRED, COMP).
  virtual std::string_view name() const = 0;

  /// Evaluates a parsed query. Returns Unsupported when the query falls
  /// outside the engine's language class (the router then falls back to a
  /// more expressive engine).
  virtual StatusOr<QueryResult> Evaluate(const LangExprPtr& query) const = 0;
};

}  // namespace fts

#endif  // FTS_EVAL_ENGINE_H_
