// Engine interface shared by the four evaluation strategies of paper
// Section 5 (BOOL merges, pipelined PPRED, per-ordering NPRED, materialized
// COMP). Engines take parsed surface queries, return matching node ids with
// optional scores, and report machine-independent cost counters.

#ifndef FTS_EVAL_ENGINE_H_
#define FTS_EVAL_ENGINE_H_

#include <span>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "exec/exec_context.h"
#include "index/index_snapshot.h"
#include "index/inverted_index.h"
#include "lang/ast.h"

namespace fts {

/// Per-segment evaluation inputs an engine needs when its index is one
/// segment of an IndexSnapshot rather than a standalone corpus: the
/// segment's tombstones (filtered at cursor level — engines never see a
/// deleted node) and the snapshot-global scoring stats (null on the
/// single-segment fast path, where the segment's own statistics are
/// already global). Engines default to a null runtime, which is exactly
/// the pre-snapshot behavior. The runtime must outlive the engine — in
/// practice both live in a Searcher, which holds the snapshot.
struct SegmentRuntime {
  const TombstoneSet* tombstones = nullptr;
  const SegmentScoringStats* scoring = nullptr;
};

/// Which Section 3 scoring method an engine applies (kNone disables
/// scoring entirely).
enum class ScoringKind {
  kNone,
  kTfIdf,
  kProbabilistic,
};

const char* ScoringKindToString(ScoringKind kind);

/// How engines traverse inverted lists.
enum class CursorMode {
  /// Strictly sequential nextEntry()/getPositions(), the paper's Section
  /// 5.1.2 access model. Operation counts reproduce the paper's figures.
  kSequential,
  /// Skip-based seeking over the block-compressed lists: zig-zag joins call
  /// SeekEntry instead of stepping, decoding only the blocks they land in.
  /// Results are identical to kSequential; only the access pattern changes.
  kSeek,
  /// Per-query planner: engines read df statistics from the block-list
  /// headers and choose kSequential or kSeek per operator/pipeline via
  /// PlanFromDfs. Results are identical to both fixed modes; only the
  /// access pattern is chosen adaptively. The forced modes above bypass
  /// the planner entirely (paper-faithful access counts need kSequential).
  kAdaptive,
};

const char* CursorModeToString(CursorMode mode);

/// Whether phrase/NEAR-shaped operators may be routed to the auxiliary
/// (frequent-term, other-term) pair lists when the index carries them
/// (src/eval/pair_plan.h, docs/pair_index.md). Routing never changes
/// results — the pair lists are an exact substitute — only which index the
/// operator reads.
enum class PairRouting {
  /// Route when the multi-index cost model prefers the pair list. Only
  /// active under CursorMode::kAdaptive — the forced cursor modes pin the
  /// position pipeline so their access counts stay paper-faithful.
  kAuto,
  /// Route every eligible operator unconditionally (differential tests
  /// pin the pair path against the pipeline with this).
  kForce,
  /// Never route; the position pipeline runs as if no pair index existed.
  kOff,
};

const char* PairRoutingToString(PairRouting routing);

/// Tunables of the adaptive access-mode planner.
struct AdaptivePlannerOptions {
  /// A driver (smallest-df) list must be at least this many times smaller
  /// than the combined other lists before seeking pays: seeks decode whole
  /// landing blocks (kDefaultBlockSize entries a hop), so the driver must
  /// be selective enough that hops actually skip blocks. Ties (driver *
  /// threshold == sum of others) choose kSeek.
  double selectivity_threshold = 16.0;
};

/// The access-mode heuristic: given the per-list sizes an operator would
/// read (document frequencies for token lists, intermediate cardinalities
/// for already-evaluated inputs), picks kSeek when the smallest list is
/// selective enough to drive skips (min * threshold <= sum of the rest)
/// and kSequential otherwise. An empty (df 0) list is the most selective
/// driver of all — the zig-zag terminates immediately — so it always
/// plans kSeek against non-empty peers. Fewer than two lists plan
/// kSequential: there is nothing to zig-zag against.
CursorMode PlanFromDfs(std::span<const uint64_t> dfs,
                       const AdaptivePlannerOptions& opts = {});

/// The block-max analogue of PlanFromDfs: should a top-`top_k` evaluation
/// use block-max skipping rather than full evaluation? Skipping pays when
/// the requested k is small relative to the candidate set the query could
/// touch (`estimated_candidates`, computed from df statistics: leaf = df,
/// AND = min of children, OR = sum) — the heap threshold then rises early
/// and most candidate blocks fall under it. The same selectivity threshold
/// governs both planners: k * threshold <= candidates chooses block-max
/// (ties choose block-max, mirroring PlanFromDfs). top_k == 0 (no ranking
/// requested) always chooses full evaluation.
bool PlanBlockMax(size_t top_k, uint64_t estimated_candidates,
                  const AdaptivePlannerOptions& opts = {});

/// Result of one query evaluation.
struct QueryResult {
  /// Matching context nodes, ascending.
  std::vector<NodeId> nodes;
  /// Scores parallel to `nodes`; empty when scoring is kNone.
  std::vector<double> scores;
  /// Evaluation cost counters for this query.
  EvalCounters counters;
};

/// A query evaluation strategy over one InvertedIndex.
///
/// Thread safety: engines are immutable after construction (the raw-oracle
/// test seam aside) and the index they read is immutable after load, so one
/// engine instance may evaluate queries from many threads concurrently.
/// All mutable per-query state lives in the caller's ExecContext, which is
/// single-threaded — one context per thread.
class Engine {
 public:
  virtual ~Engine() = default;

  /// Engine name as used in the paper's figures (BOOL, PPRED, NPRED, COMP).
  virtual std::string_view name() const = 0;

  /// Evaluates a parsed query under caller-provided per-query execution
  /// state: `ctx` supplies the decoded-block caches (L1, optional L2),
  /// accumulates counters, and may impose a deadline. Returns Unsupported
  /// when the query falls outside the engine's language class (the router
  /// then falls back to a more expressive engine) and DeadlineExceeded
  /// when ctx's deadline expires mid-evaluation.
  virtual StatusOr<QueryResult> Evaluate(const LangExprPtr& query,
                                         ExecContext& ctx) const = 0;

  /// Deprecated shim: evaluates under a fresh default ExecContext (auto L1
  /// policy, no L2, no deadline). Prefer the snapshot-based entry point —
  /// Searcher::Search(query, ExecContext&) — or the context-taking
  /// overload above; this survives so pre-snapshot call sites stay
  /// mechanical. Derived classes re-export it with `using
  /// Engine::Evaluate`.
  StatusOr<QueryResult> Evaluate(const LangExprPtr& query) const {
    ExecContext ctx;
    return Evaluate(query, ctx);
  }
};

}  // namespace fts

#endif  // FTS_EVAL_ENGINE_H_
