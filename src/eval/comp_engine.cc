#include "eval/comp_engine.h"

#include <memory>

#include "algebra/fta.h"
#include "calculus/analysis.h"
#include "compile/ftc_to_fta.h"
#include "index/decoded_block_cache.h"
#include "lang/translate.h"
#include "scoring/probabilistic.h"
#include "scoring/tfidf.h"

namespace fts {

StatusOr<QueryResult> CompEngine::Evaluate(const LangExprPtr& query) const {
  if (!query) return Status::InvalidArgument("null query");
  FTS_ASSIGN_OR_RETURN(CalcQuery calc, TranslateToCalculus(query));
  FTS_ASSIGN_OR_RETURN(FtaExprPtr plan, CompileQuery(calc));

  std::unique_ptr<AlgebraScoreModel> model;
  if (scoring_ == ScoringKind::kTfIdf) {
    auto token_set = CollectTokens(calc.expr);
    std::vector<std::string> tokens(token_set.begin(), token_set.end());
    model = std::make_unique<TfIdfScoreModel>(index_, std::move(tokens));
  } else if (scoring_ == ScoringKind::kProbabilistic) {
    model = std::make_unique<ProbabilisticScoreModel>(index_);
  }

  QueryResult result;
  // The cache only pays when some list is scanned twice and the working
  // set fits; single-scan plans skip its per-block bookkeeping entirely.
  DecodedBlockCache cache;
  DecodedBlockCache* cache_ptr =
      ShouldUseDecodedBlockCache(plan, *index_) ? &cache : nullptr;
  FTS_ASSIGN_OR_RETURN(FtRelation rel,
                       EvaluateFta(plan, *index_, model.get(), &result.counters,
                                    raw_oracle_, cache_ptr));
  result.nodes.reserve(rel.size());
  for (size_t i = 0; i < rel.size(); ++i) {
    result.nodes.push_back(rel.tuple(i).node);
    if (scoring_ != ScoringKind::kNone) result.scores.push_back(rel.tuple(i).score);
  }
  return result;
}

}  // namespace fts
