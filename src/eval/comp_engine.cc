#include "eval/comp_engine.h"

#include <memory>

#include "algebra/fta.h"
#include "calculus/analysis.h"
#include "compile/ftc_to_fta.h"
#include "index/decoded_block_cache.h"
#include "lang/translate.h"
#include "scoring/probabilistic.h"
#include "scoring/tfidf.h"

namespace fts {

StatusOr<QueryResult> CompEngine::Evaluate(const LangExprPtr& query,
                                           ExecContext& ctx) const {
  if (!query) return Status::InvalidArgument("null query");
  FTS_RETURN_IF_ERROR(ctx.deadline().Check());
  FTS_ASSIGN_OR_RETURN(CalcQuery calc, TranslateToCalculus(query));
  FTS_ASSIGN_OR_RETURN(FtaExprPtr plan, CompileQuery(calc));

  const SegmentScoringStats* stats =
      segment_ != nullptr ? segment_->scoring : nullptr;
  std::unique_ptr<AlgebraScoreModel> model;
  if (scoring_ == ScoringKind::kTfIdf) {
    auto token_set = CollectTokens(calc.expr);
    std::vector<std::string> tokens(token_set.begin(), token_set.end());
    model = std::make_unique<TfIdfScoreModel>(index_, std::move(tokens), nullptr,
                                              stats);
  } else if (scoring_ == ScoringKind::kProbabilistic) {
    model = std::make_unique<ProbabilisticScoreModel>(index_, stats);
  }

  QueryResult result;
  // The context's L1 attaches when some list is scanned twice and the
  // working set fits, or whenever an L2 is present; single-scan plans
  // without an L2 skip the per-block bookkeeping entirely.
  DecodedBlockCache* cache_ptr =
      ctx.WantCache(ShouldUseDecodedBlockCache(plan, *index_)) ? &ctx.l1_cache()
                                                               : nullptr;
  FTS_ASSIGN_OR_RETURN(
      FtRelation rel,
      EvaluateFta(plan, *index_, model.get(), &result.counters, raw_oracle_,
                  cache_ptr, &ctx.deadline(),
                  segment_ != nullptr ? segment_->tombstones : nullptr));
  result.nodes.reserve(rel.size());
  for (size_t i = 0; i < rel.size(); ++i) {
    result.nodes.push_back(rel.tuple(i).node);
    if (scoring_ != ScoringKind::kNone) result.scores.push_back(rel.tuple(i).score);
  }
  ctx.counters().MergeFrom(result.counters);
  return result;
}

}  // namespace fts
