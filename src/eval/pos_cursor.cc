#include "eval/pos_cursor.h"

#include <algorithm>
#include <vector>

#include "index/block_posting_list.h"
#include "index/decoded_block_cache.h"
#include "testing/raw_posting_oracle.h"

namespace fts {

namespace {

// Structural cardinality estimate of one plan subtree, bottom-up from the
// list-header document frequencies: joins and intersections keep at most
// their smaller input, unions at most the sum, selections and projections
// at most their child, antijoins and differences at most their left side.
// Upper bounds, not exact counts — but they compose, so a nested operator
// is sized by its inputs' estimates instead of its raw leaf dfs.
uint64_t EstimatePlanCardinality(const FtaExprPtr& plan,
                                 const InvertedIndex& index) {
  if (!plan) return 0;
  switch (plan->kind()) {
    case FtaExpr::Kind::kToken:
      return index.df(index.LookupToken(plan->token()));
    case FtaExpr::Kind::kSearchContext:
    case FtaExpr::Kind::kHasPos:
      return index.num_nodes();
    case FtaExpr::Kind::kJoin:
    case FtaExpr::Kind::kIntersect:
      return std::min(EstimatePlanCardinality(plan->left(), index),
                      EstimatePlanCardinality(plan->right(), index));
    case FtaExpr::Kind::kUnion:
      return EstimatePlanCardinality(plan->left(), index) +
             EstimatePlanCardinality(plan->right(), index);
    case FtaExpr::Kind::kSelect:
    case FtaExpr::Kind::kProject:
      return EstimatePlanCardinality(plan->child(), index);
    case FtaExpr::Kind::kAntiJoin:
    case FtaExpr::Kind::kDifference:
      return EstimatePlanCardinality(plan->left(), index);
  }
  return 0;
}

// Collects the estimated size of each stream the pipeline zig-zags against
// the others: the operands of the join-like operators, seen through the
// size-preserving select/project wrappers. A join-free plan contributes a
// single stream, which PlanFromDfs answers with kSequential — there is
// nothing to skip against.
void CollectStreamEstimates(const FtaExprPtr& plan, const InvertedIndex& index,
                            std::vector<uint64_t>* sizes) {
  if (!plan) return;
  switch (plan->kind()) {
    case FtaExpr::Kind::kJoin:
    case FtaExpr::Kind::kIntersect:
    case FtaExpr::Kind::kAntiJoin:
    case FtaExpr::Kind::kDifference:
      CollectStreamEstimates(plan->left(), index, sizes);
      CollectStreamEstimates(plan->right(), index, sizes);
      return;
    case FtaExpr::Kind::kSelect:
    case FtaExpr::Kind::kProject:
      CollectStreamEstimates(plan->child(), index, sizes);
      return;
    default:
      sizes->push_back(EstimatePlanCardinality(plan, index));
      return;
  }
}

}  // namespace

CursorMode PlanPipelineCursorMode(CursorMode requested, const FtaExprPtr& plan,
                                  const InvertedIndex& index,
                                  const AdaptivePlannerOptions& opts,
                                  uint64_t observed_cardinality) {
  if (requested != CursorMode::kAdaptive) return requested;
  std::vector<uint64_t> sizes;
  CollectStreamEstimates(plan, index, &sizes);
  if (observed_cardinality != kNoObservedCardinality) {
    sizes.push_back(observed_cardinality);
  }
  return PlanFromDfs(sizes, opts);
}

NodeId PosCursor::SeekNode(NodeId target) {
  NodeId n = node();
  if (n != kInvalidNode && n >= target) return n;
  // Before the first AdvanceNode, node() is kInvalidNode: start the cursor.
  // (An exhausted cursor re-advances harmlessly to kInvalidNode.)
  if (n == kInvalidNode) n = AdvanceNode();
  while (n != kInvalidNode && n < target) n = AdvanceNode();
  return n;
}

namespace {

void CountOp(const PipelineContext& ctx) {
  if (ctx.counters) ++ctx.counters->cursor_ops;
}

// ---------------------------------------------------------------------------
// Scan: walk of one inverted list (the leaf of every plan), reading the
// block-resident representation in both modes. Sequential mode steps the
// decoded blocks entry by entry, charging exactly the paper's sequential
// access counts; seek mode additionally serves SeekNode via the skip
// table, decoding only landing blocks. A raw-oracle ListCursor slots into
// the same template for differential tests.
// ---------------------------------------------------------------------------

template <typename CursorT>
class ScanCursor : public PosCursor {
 public:
  ScanCursor(CursorT cursor, TokenId token, const PipelineContext& ctx)
      : ctx_(ctx), cursor_(std::move(cursor)), token_(token) {}

  size_t num_cols() const override { return 1; }
  NodeId node() const override { return node_; }

  NodeId AdvanceNode() override {
    CountOp(ctx_);
    node_ = cursor_.NextEntry();
    if (node_ == kInvalidNode) {
      SyncStatus();
      return node_;
    }
    OnEntry();
    return node_;
  }

  NodeId SeekNode(NodeId target) override {
    if (ctx_.mode != CursorMode::kSeek) return PosCursor::SeekNode(target);
    if (node_ != kInvalidNode && node_ >= target) return node_;
    CountOp(ctx_);
    node_ = cursor_.SeekEntry(target);
    if (node_ == kInvalidNode) {
      SyncStatus();
      return node_;
    }
    OnEntry();
    return node_;
  }

  bool AdvancePosition(size_t, uint32_t min_offset) override {
    CountOp(ctx_);
    EnsurePositions();
    while (idx_ < positions_.size() && positions_[idx_].offset < min_offset) {
      ++idx_;
      // Each position is charged once, when it becomes current; running off
      // the end of the entry consumes nothing new.
      if (ctx_.counters && idx_ < positions_.size()) {
        ++ctx_.counters->positions_scanned;
      }
    }
    return idx_ < positions_.size();
  }

  PositionInfo position(size_t) const override {
    EnsurePositions();
    return positions_[idx_];
  }
  double node_score() const override { return score_; }

 private:
  void OnEntry() {
    // The entry's PosList is fetched lazily: nodes skipped over by zig-zag
    // alignment never pay for their position bytes.
    have_positions_ = false;
    idx_ = 0;
    if (ctx_.counters) ++ctx_.counters->positions_scanned;
    score_ = ctx_.model == nullptr
                 ? 0.0
                 : ctx_.model->EntryScore(*ctx_.index, token_, node_,
                                          cursor_.pos_count());
  }

  void EnsurePositions() const {
    if (!have_positions_) {
      positions_ = cursor_.GetPositions();
      have_positions_ = true;
      SyncStatus();
    }
  }

  /// Copies a sticky cursor decode error (first-touch validation failure)
  /// into the pipeline's shared status slot; the scan has already failed
  /// closed by exhausting / returning an empty PosList.
  void SyncStatus() const {
    if (ctx_.status != nullptr && ctx_.status->ok() && !cursor_.status().ok()) {
      *ctx_.status = cursor_.status();
    }
  }

  PipelineContext ctx_;
  mutable CursorT cursor_;
  TokenId token_;
  mutable std::span<const PositionInfo> positions_;
  mutable bool have_positions_ = false;
  size_t idx_ = 0;
  NodeId node_ = kInvalidNode;
  double score_ = 0;
};

// ---------------------------------------------------------------------------
// Join (Algorithm 1): sort-merge on node id; columns are the concatenation
// of both inputs', and position cursors dispatch to the owning input.
// Alignment goes through SeekNode, so in seek mode the lagging side skips
// straight to the leading side's node (zig-zag join) instead of stepping.
// ---------------------------------------------------------------------------

class JoinCursor : public PosCursor {
 public:
  JoinCursor(std::unique_ptr<PosCursor> l, std::unique_ptr<PosCursor> r,
             const PipelineContext& ctx)
      : ctx_(ctx), l_(std::move(l)), r_(std::move(r)), lcols_(l_->num_cols()) {}

  size_t num_cols() const override { return lcols_ + r_->num_cols(); }
  NodeId node() const override { return node_; }

  NodeId AdvanceNode() override {
    CountOp(ctx_);
    return Align(l_->AdvanceNode(), r_->AdvanceNode());
  }

  NodeId SeekNode(NodeId target) override {
    if (ctx_.mode != CursorMode::kSeek) return PosCursor::SeekNode(target);
    if (node_ != kInvalidNode && node_ >= target) return node_;
    CountOp(ctx_);
    return Align(l_->SeekNode(target), r_->SeekNode(target));
  }

  bool AdvancePosition(size_t col, uint32_t min_offset) override {
    CountOp(ctx_);
    if (col < lcols_) return l_->AdvancePosition(col, min_offset);
    return r_->AdvancePosition(col - lcols_, min_offset);
  }

  PositionInfo position(size_t col) const override {
    return col < lcols_ ? l_->position(col) : r_->position(col - lcols_);
  }

  double node_score() const override {
    if (ctx_.model == nullptr) return 0.0;
    return ctx_.model->JoinScore(l_->node_score(), 1, r_->node_score(), 1);
  }

 private:
  NodeId Align(NodeId n1, NodeId n2) {
    while (n1 != kInvalidNode && n2 != kInvalidNode && n1 != n2) {
      if (n1 < n2) {
        n1 = l_->SeekNode(n2);
      } else {
        n2 = r_->SeekNode(n1);
      }
    }
    node_ = (n1 == kInvalidNode || n2 == kInvalidNode) ? kInvalidNode : n1;
    return node_;
  }

  PipelineContext ctx_;
  std::unique_ptr<PosCursor> l_, r_;
  size_t lcols_;
  NodeId node_ = kInvalidNode;
};

// ---------------------------------------------------------------------------
// Select (Algorithms 2 and 7): advancePosUntilSat. Positive predicates skip
// via Definition 1 bounds; negative predicates move the cursor holding the
// largest position toward the predicate's satisfaction target.
// ---------------------------------------------------------------------------

class SelectCursor : public PosCursor {
 public:
  SelectCursor(std::unique_ptr<PosCursor> in, AlgebraPredicateCall call,
               const PipelineContext& ctx)
      : ctx_(ctx),
        in_(std::move(in)),
        call_(std::move(call)),
        args_(call_.cols.size()),
        bounds_(call_.cols.size()) {}

  size_t num_cols() const override { return in_->num_cols(); }
  NodeId node() const override { return in_->node(); }

  NodeId AdvanceNode() override {
    CountOp(ctx_);
    NodeId n = in_->AdvanceNode();
    while (n != kInvalidNode && !AdvancePosUntilSat()) {
      n = in_->AdvanceNode();
    }
    return n;
  }

  NodeId SeekNode(NodeId target) override {
    if (ctx_.mode != CursorMode::kSeek) return PosCursor::SeekNode(target);
    NodeId n = node();
    if (n != kInvalidNode && n >= target) return n;
    CountOp(ctx_);
    n = in_->SeekNode(target);
    while (n != kInvalidNode && !AdvancePosUntilSat()) {
      n = in_->AdvanceNode();
    }
    return n;
  }

  bool AdvancePosition(size_t col, uint32_t min_offset) override {
    CountOp(ctx_);
    if (!in_->AdvancePosition(col, min_offset)) return false;
    return AdvancePosUntilSat();
  }

  PositionInfo position(size_t col) const override { return in_->position(col); }

  double node_score() const override {
    if (ctx_.model == nullptr) return 0.0;
    // Score the node with the currently matched positions as witnesses.
    std::vector<PositionInfo> args(call_.cols.size());
    for (size_t k = 0; k < call_.cols.size(); ++k) {
      args[k] = in_->position(call_.cols[k]);
    }
    return ctx_.model->SelectScore(in_->node_score(), *call_.pred, args,
                                   call_.consts);
  }

 private:
  void LoadArgs() {
    for (size_t k = 0; k < call_.cols.size(); ++k) {
      args_[k] = in_->position(call_.cols[k]);
    }
  }

  bool AdvancePosUntilSat() {
    while (true) {
      LoadArgs();
      if (ctx_.counters) ++ctx_.counters->predicate_evals;
      if (call_.pred->Eval(args_, call_.consts)) return true;
      if (call_.pred->cls() == PredicateClass::kPositive) {
        call_.pred->AdvanceBounds(args_, call_.consts, bounds_);
        bool progressed = false;
        for (size_t i = 0; i < bounds_.size(); ++i) {
          if (bounds_[i] > args_[i].offset) {
            if (!in_->AdvancePosition(call_.cols[i], bounds_[i])) return false;
            progressed = true;
            break;
          }
        }
        if (!progressed) return false;  // contract violation guard
      } else {
        // Negative predicate (Algorithm 7): move the largest position. The
        // `le` ordering selections beneath keep this thread's permutation
        // invariant re-established after every move.
        const size_t mx = call_.pred->LargestArgument(args_);
        const uint32_t target =
            call_.pred->NegativeAdvanceTarget(args_, call_.consts, mx);
        if (target == kInvalidOffset) return false;
        if (target <= args_[mx].offset) return false;  // contract violation guard
        if (!in_->AdvancePosition(call_.cols[mx], target)) return false;
      }
    }
  }

  PipelineContext ctx_;
  std::unique_ptr<PosCursor> in_;
  AlgebraPredicateCall call_;
  std::vector<PositionInfo> args_;
  std::vector<uint32_t> bounds_;
};

// ---------------------------------------------------------------------------
// Project (Algorithm 3): exposes a subset/permutation of the input columns.
// ---------------------------------------------------------------------------

class ProjectCursor : public PosCursor {
 public:
  ProjectCursor(std::unique_ptr<PosCursor> in, std::vector<int> keep,
                const PipelineContext& ctx)
      : ctx_(ctx), in_(std::move(in)), keep_(std::move(keep)) {}

  size_t num_cols() const override { return keep_.size(); }
  NodeId node() const override { return in_->node(); }

  NodeId AdvanceNode() override {
    CountOp(ctx_);
    return in_->AdvanceNode();
  }

  NodeId SeekNode(NodeId target) override {
    if (ctx_.mode != CursorMode::kSeek) return PosCursor::SeekNode(target);
    CountOp(ctx_);
    return in_->SeekNode(target);
  }

  bool AdvancePosition(size_t col, uint32_t min_offset) override {
    CountOp(ctx_);
    return in_->AdvancePosition(keep_[col], min_offset);
  }

  PositionInfo position(size_t col) const override {
    return in_->position(keep_[col]);
  }

  double node_score() const override { return in_->node_score(); }

 private:
  PipelineContext ctx_;
  std::unique_ptr<PosCursor> in_;
  std::vector<int> keep_;
};

// ---------------------------------------------------------------------------
// Union (Algorithm 4): merge on node id; within a shared node the current
// tuple is the lexicographically smaller of the two inputs'.
// ---------------------------------------------------------------------------

class UnionCursor : public PosCursor {
 public:
  UnionCursor(std::unique_ptr<PosCursor> a, std::unique_ptr<PosCursor> b,
              const PipelineContext& ctx)
      : ctx_(ctx), a_(std::move(a)), b_(std::move(b)), cols_(a_->num_cols()) {}

  size_t num_cols() const override { return cols_; }
  NodeId node() const override { return node_; }

  NodeId AdvanceNode() override {
    CountOp(ctx_);
    if (!started_) {
      na_ = a_->AdvanceNode();
      nb_ = b_->AdvanceNode();
      started_ = true;
    } else {
      if (a_on_node_) na_ = a_->AdvanceNode();
      if (b_on_node_) nb_ = b_->AdvanceNode();
    }
    node_ = std::min(na_, nb_);  // kInvalidNode is the max NodeId
    a_on_node_ = (na_ == node_) && node_ != kInvalidNode;
    b_on_node_ = (nb_ == node_) && node_ != kInvalidNode;
    a_has_tuple_ = a_on_node_;
    b_has_tuple_ = b_on_node_;
    return node_;
  }

  bool AdvancePosition(size_t col, uint32_t min_offset) override {
    CountOp(ctx_);
    if (a_has_tuple_) a_has_tuple_ = a_->AdvancePosition(col, min_offset);
    if (b_has_tuple_) b_has_tuple_ = b_->AdvancePosition(col, min_offset);
    return a_has_tuple_ || b_has_tuple_;
  }

  PositionInfo position(size_t col) const override {
    return Current()->position(col);
  }

  double node_score() const override {
    if (ctx_.model == nullptr) return 0.0;
    if (a_on_node_ && b_on_node_) {
      return ctx_.model->UnionBoth(a_->node_score(), b_->node_score());
    }
    return a_on_node_ ? a_->node_score() : b_->node_score();
  }

 private:
  // The input holding the current (lexicographically minimal) tuple.
  const PosCursor* Current() const {
    if (a_has_tuple_ && !b_has_tuple_) return a_.get();
    if (b_has_tuple_ && !a_has_tuple_) return b_.get();
    for (size_t c = 0; c < cols_; ++c) {
      const uint32_t ao = a_->position(c).offset;
      const uint32_t bo = b_->position(c).offset;
      if (ao != bo) return ao < bo ? a_.get() : b_.get();
    }
    return a_.get();
  }

  PipelineContext ctx_;
  std::unique_ptr<PosCursor> a_, b_;
  size_t cols_;
  bool started_ = false;
  NodeId na_ = kInvalidNode, nb_ = kInvalidNode;
  bool a_on_node_ = false, b_on_node_ = false;
  bool a_has_tuple_ = false, b_has_tuple_ = false;
  NodeId node_ = kInvalidNode;
};

// ---------------------------------------------------------------------------
// Anti-join (Algorithm 5): nodes of the left input absent from the right.
// ---------------------------------------------------------------------------

class AntiJoinCursor : public PosCursor {
 public:
  AntiJoinCursor(std::unique_ptr<PosCursor> l, std::unique_ptr<PosCursor> r,
                 const PipelineContext& ctx)
      : ctx_(ctx), l_(std::move(l)), r_(std::move(r)) {}

  size_t num_cols() const override { return l_->num_cols(); }
  NodeId node() const override { return l_->node(); }

  NodeId AdvanceNode() override {
    CountOp(ctx_);
    return FilterFrom(l_->AdvanceNode());
  }

  NodeId SeekNode(NodeId target) override {
    if (ctx_.mode != CursorMode::kSeek) return PosCursor::SeekNode(target);
    if (l_->node() != kInvalidNode && l_->node() >= target) return l_->node();
    CountOp(ctx_);
    return FilterFrom(l_->SeekNode(target));
  }

  bool AdvancePosition(size_t col, uint32_t min_offset) override {
    CountOp(ctx_);
    return l_->AdvancePosition(col, min_offset);
  }

  PositionInfo position(size_t col) const override { return l_->position(col); }

  double node_score() const override {
    if (ctx_.model == nullptr) return 0.0;
    return ctx_.model->DifferenceScore(l_->node_score());
  }

 private:
  /// Skips left-side nodes present on the right, starting from left node
  /// `n`. The right side advances through SeekNode, so seek mode skips its
  /// blocks instead of stepping entry by entry.
  NodeId FilterFrom(NodeId n) {
    while (n != kInvalidNode) {
      if (!r_started_) {
        r_->AdvanceNode();
        r_started_ = true;
      }
      if (r_->node() != kInvalidNode && r_->node() < n) r_->SeekNode(n);
      if (r_->node() != n) return n;
      n = l_->AdvanceNode();  // excluded node
    }
    return kInvalidNode;
  }

  PipelineContext ctx_;
  std::unique_ptr<PosCursor> l_, r_;
  bool r_started_ = false;
};

}  // namespace

StatusOr<std::unique_ptr<PosCursor>> BuildPipeline(const FtaExprPtr& plan,
                                                   const PipelineContext& ctx) {
  if (!plan) return Status::InvalidArgument("null plan");
  switch (plan->kind()) {
    case FtaExpr::Kind::kToken: {
      const TokenId id = ctx.index->LookupToken(plan->token());
      if (ctx.raw_oracle != nullptr) {
        return std::unique_ptr<PosCursor>(new ScanCursor<ListCursor>(
            ListCursor(ctx.raw_oracle->list(id), ctx.counters, ctx.tombstones),
            id, ctx));
      }
      // Both cursor modes read the block-resident list; kSequential simply
      // never calls SeekEntry (ScanCursor::SeekNode steps instead).
      return std::unique_ptr<PosCursor>(new ScanCursor<BlockListCursor>(
          BlockListCursor(ctx.index->block_list(id), ctx.counters, ctx.cache,
                          ctx.tombstones),
          id, ctx));
    }
    case FtaExpr::Kind::kJoin: {
      FTS_ASSIGN_OR_RETURN(auto l, BuildPipeline(plan->left(), ctx));
      FTS_ASSIGN_OR_RETURN(auto r, BuildPipeline(plan->right(), ctx));
      return std::unique_ptr<PosCursor>(
          new JoinCursor(std::move(l), std::move(r), ctx));
    }
    case FtaExpr::Kind::kSelect: {
      if (plan->pred().pred->cls() == PredicateClass::kGeneral) {
        return Status::Unsupported("predicate '" +
                                   std::string(plan->pred().pred->name()) +
                                   "' is neither positive nor negative");
      }
      FTS_ASSIGN_OR_RETURN(auto in, BuildPipeline(plan->child(), ctx));
      return std::unique_ptr<PosCursor>(
          new SelectCursor(std::move(in), plan->pred(), ctx));
    }
    case FtaExpr::Kind::kProject: {
      FTS_ASSIGN_OR_RETURN(auto in, BuildPipeline(plan->child(), ctx));
      return std::unique_ptr<PosCursor>(
          new ProjectCursor(std::move(in), plan->project_cols(), ctx));
    }
    case FtaExpr::Kind::kUnion: {
      FTS_ASSIGN_OR_RETURN(auto l, BuildPipeline(plan->left(), ctx));
      FTS_ASSIGN_OR_RETURN(auto r, BuildPipeline(plan->right(), ctx));
      return std::unique_ptr<PosCursor>(
          new UnionCursor(std::move(l), std::move(r), ctx));
    }
    case FtaExpr::Kind::kAntiJoin: {
      FTS_ASSIGN_OR_RETURN(auto l, BuildPipeline(plan->left(), ctx));
      FTS_ASSIGN_OR_RETURN(auto r, BuildPipeline(plan->right(), ctx));
      return std::unique_ptr<PosCursor>(
          new AntiJoinCursor(std::move(l), std::move(r), ctx));
    }
    case FtaExpr::Kind::kHasPos:
    case FtaExpr::Kind::kSearchContext:
    case FtaExpr::Kind::kIntersect:
    case FtaExpr::Kind::kDifference:
      return Status::Unsupported("plan node '" + plan->ToString() +
                                 "' requires materialized (COMP) evaluation");
  }
  return Status::Internal("unreachable plan kind");
}

void DrainPipeline(PosCursor* cursor, bool want_scores,
                   std::vector<NodeId>* nodes, std::vector<double>* scores,
                   const PipelineContext& ctx) {
  // Deadline granularity: one clock read per kCheckEvery result nodes (an
  // unset deadline short-circuits to a single branch), so the drain's
  // tight loop stays tight and overruns are bounded.
  constexpr size_t kCheckEvery = 4096;
  size_t until_check = kCheckEvery;
  while (true) {
    const NodeId n = cursor->AdvanceNode();
    if (n == kInvalidNode) return;
    nodes->push_back(n);
    if (want_scores) scores->push_back(cursor->node_score());
    if (--until_check == 0) {
      until_check = kCheckEvery;
      if (ctx.deadline != nullptr && ctx.deadline->Expired()) {
        if (ctx.status != nullptr && ctx.status->ok()) {
          *ctx.status = Status::DeadlineExceeded("query deadline expired (pipeline)");
        }
        return;
      }
    }
  }
}

}  // namespace fts
