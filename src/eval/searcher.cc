#include "eval/searcher.h"

namespace fts {

namespace {

const char* EngineNameForClass(LanguageClass cls) {
  switch (cls) {
    case LanguageClass::kBoolNoNeg:
    case LanguageClass::kBool:
      return "BOOL";
    case LanguageClass::kPpred:
      return "PPRED";
    case LanguageClass::kNpred:
      return "NPRED";
    case LanguageClass::kComp:
      return "COMP";
  }
  return "COMP";
}

}  // namespace

Searcher::Searcher(std::shared_ptr<const IndexSnapshot> snapshot,
                   SearcherOptions options)
    : snapshot_(std::move(snapshot)), options_(options) {
  segments_.reserve(snapshot_->num_segments());
  for (const SegmentView& seg : snapshot_->segments()) {
    segments_.push_back(std::make_unique<SegmentEngines>(seg, options_));
  }
}

const CompEngine& Searcher::comp_engine(size_t segment) const {
  return segments_[segment]->comp_engine;
}
const BoolEngine& Searcher::bool_engine(size_t segment) const {
  return segments_[segment]->bool_engine;
}
const PpredEngine& Searcher::ppred_engine(size_t segment) const {
  return segments_[segment]->ppred_engine;
}
const NpredEngine& Searcher::npred_engine(size_t segment) const {
  return segments_[segment]->npred_engine;
}

StatusOr<RoutedResult> Searcher::Search(std::string_view query,
                                        ExecContext& ctx) const {
  FTS_ASSIGN_OR_RETURN(LangExprPtr parsed,
                       ParseQuery(query, SurfaceLanguage::kComp));
  return SearchParsed(parsed, ctx);
}

StatusOr<RoutedResult> Searcher::SearchParsed(const LangExprPtr& query,
                                              ExecContext& ctx) const {
  if (!query) return Status::InvalidArgument("null query");
  RoutedResult out;
  out.language_class = ClassifyQuery(query);
  out.engine = EngineNameForClass(out.language_class);

  for (size_t i = 0; i < segments_.size(); ++i) {
    const SegmentEngines& se = *segments_[i];
    const Engine* engine = nullptr;
    switch (out.language_class) {
      case LanguageClass::kBoolNoNeg:
      case LanguageClass::kBool:
        engine = &se.bool_engine;
        break;
      case LanguageClass::kPpred:
        engine = &se.ppred_engine;
        break;
      case LanguageClass::kNpred:
        engine = &se.npred_engine;
        break;
      case LanguageClass::kComp:
        engine = &se.comp_engine;
        break;
    }

    StatusOr<QueryResult> result = engine->Evaluate(query, ctx);
    if (!result.ok() && result.status().code() == StatusCode::kUnsupported &&
        engine != &se.comp_engine) {
      // A specialized engine declined (e.g. a plan shape it cannot stream);
      // COMP is complete and always applicable. Declining is a function of
      // the query alone, so every segment takes the same fallback and the
      // reported engine stays consistent.
      result = se.comp_engine.Evaluate(query, ctx);
      engine = &se.comp_engine;
    }
    FTS_RETURN_IF_ERROR(result.status());
    out.engine = std::string(engine->name());

    // Rebase the segment's local ids into the snapshot's global id space
    // and append: bases are disjoint and increasing, so the concatenation
    // of per-segment ascending results is globally ascending.
    QueryResult seg_result = std::move(result).value();
    const NodeId base = snapshot_->segment(i).base;
    out.result.nodes.reserve(out.result.nodes.size() + seg_result.nodes.size());
    for (const NodeId n : seg_result.nodes) {
      out.result.nodes.push_back(base + n);
    }
    out.result.scores.insert(out.result.scores.end(), seg_result.scores.begin(),
                             seg_result.scores.end());
    out.result.counters.MergeFrom(seg_result.counters);
  }
  return out;
}

}  // namespace fts
