#include "eval/searcher.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "eval/block_max.h"
#include "scoring/probabilistic.h"
#include "scoring/tfidf.h"
#include "scoring/topk.h"

namespace fts {

namespace {

const char* EngineNameForClass(LanguageClass cls) {
  switch (cls) {
    case LanguageClass::kBoolNoNeg:
    case LanguageClass::kBool:
      return "BOOL";
    case LanguageClass::kPpred:
      return "PPRED";
    case LanguageClass::kNpred:
      return "NPRED";
    case LanguageClass::kComp:
      return "COMP";
  }
  return "COMP";
}

/// df-based candidate estimate for the block-max planner: leaf = document
/// frequency, AND = min of children (the join cannot exceed its smallest
/// input), OR = saturating sum. Anything else (unreachable behind
/// BlockMaxSupports) estimates the whole segment.
uint64_t EstimateCandidates(const LangExprPtr& e, const InvertedIndex& index) {
  switch (e->kind()) {
    case LangExpr::Kind::kToken:
      return index.df(index.LookupToken(e->token()));
    case LangExpr::Kind::kAnd:
      return std::min(EstimateCandidates(e->left(), index),
                      EstimateCandidates(e->right(), index));
    case LangExpr::Kind::kOr: {
      const uint64_t l = EstimateCandidates(e->left(), index);
      const uint64_t r = EstimateCandidates(e->right(), index);
      return l > UINT64_MAX - r ? UINT64_MAX : l + r;
    }
    default:
      return index.num_nodes();
  }
}

}  // namespace

Searcher::Searcher(std::shared_ptr<const IndexSnapshot> snapshot,
                   SearcherOptions options)
    : snapshot_(std::move(snapshot)), options_(options) {
  segments_.reserve(snapshot_->num_segments());
  for (const SegmentView& seg : snapshot_->segments()) {
    segments_.push_back(std::make_unique<SegmentEngines>(seg, options_));
  }
}

const CompEngine& Searcher::comp_engine(size_t segment) const {
  return segments_[segment]->comp_engine;
}
const BoolEngine& Searcher::bool_engine(size_t segment) const {
  return segments_[segment]->bool_engine;
}
const PpredEngine& Searcher::ppred_engine(size_t segment) const {
  return segments_[segment]->ppred_engine;
}
const NpredEngine& Searcher::npred_engine(size_t segment) const {
  return segments_[segment]->npred_engine;
}

const Engine* Searcher::SelectEngine(const SegmentEngines& se,
                                     LanguageClass cls) const {
  switch (cls) {
    case LanguageClass::kBoolNoNeg:
    case LanguageClass::kBool:
      return &se.bool_engine;
    case LanguageClass::kPpred:
      return &se.ppred_engine;
    case LanguageClass::kNpred:
      return &se.npred_engine;
    case LanguageClass::kComp:
      return &se.comp_engine;
  }
  return &se.comp_engine;
}

StatusOr<RoutedResult> Searcher::Search(std::string_view query,
                                        ExecContext& ctx) const {
  FTS_ASSIGN_OR_RETURN(LangExprPtr parsed,
                       ParseQuery(query, SurfaceLanguage::kComp));
  return SearchParsed(parsed, ctx);
}

StatusOr<RoutedResult> Searcher::SearchParsed(const LangExprPtr& query,
                                              ExecContext& ctx) const {
  if (!query) return Status::InvalidArgument("null query");
  RoutedResult out;
  out.language_class = ClassifyQuery(query);
  if (segments_.empty()) {
    // Nothing ran, so no engine produced this (empty) result — claiming
    // the classified engine here would be a lie.
    out.engine = "NONE";
    return out;
  }
  out.engine = EngineNameForClass(out.language_class);

  if (ctx.top_k() > 0) return SearchTopK(query, ctx, std::move(out));

  bool engine_resolved = false;
  for (size_t i = 0; i < segments_.size(); ++i) {
    // An expired deadline must stop the query between segments too —
    // engines check it internally, but a snapshot with many segments
    // would otherwise start (and pay the setup of) every remaining one.
    FTS_RETURN_IF_ERROR(ctx.deadline().Check());
    const SegmentEngines& se = *segments_[i];
    const Engine* engine = SelectEngine(se, out.language_class);

    StatusOr<QueryResult> result = engine->Evaluate(query, ctx);
    if (!result.ok() && result.status().code() == StatusCode::kUnsupported &&
        engine != &se.comp_engine) {
      // A specialized engine declined (e.g. a plan shape it cannot stream);
      // COMP is complete and always applicable. Declining is a function of
      // the query alone, so every segment takes the same fallback and the
      // reported engine stays consistent.
      result = se.comp_engine.Evaluate(query, ctx);
      engine = &se.comp_engine;
    }
    FTS_RETURN_IF_ERROR(result.status());
    if (!engine_resolved) {
      out.engine = std::string(engine->name());
      engine_resolved = true;
    }

    // Rebase the segment's local ids into the snapshot's global id space
    // and append: bases are disjoint and increasing, so the concatenation
    // of per-segment ascending results is globally ascending.
    QueryResult seg_result = std::move(result).value();
    const NodeId base = snapshot_->segment(i).base;
    out.result.nodes.reserve(out.result.nodes.size() + seg_result.nodes.size());
    for (const NodeId n : seg_result.nodes) {
      out.result.nodes.push_back(base + n);
    }
    out.result.scores.insert(out.result.scores.end(), seg_result.scores.begin(),
                             seg_result.scores.end());
    out.result.counters.MergeFrom(seg_result.counters);
  }
  return out;
}

StatusOr<RoutedResult> Searcher::SearchTopK(const LangExprPtr& query,
                                            ExecContext& ctx,
                                            RoutedResult out) const {
  const size_t k = ctx.top_k();
  const LangExprPtr normalized = NormalizeSurface(query);
  // Block-max applies to scored pure token/AND/OR trees; kSequential is
  // the paper-faithful access model, so it always evaluates fully (exact
  // operation counts), mirroring how it bypasses seek planning.
  const bool block_max_eligible = options_.scoring != ScoringKind::kNone &&
                                  options_.mode != CursorMode::kSequential &&
                                  BlockMaxSupports(normalized);

  // One accumulator across all segments: candidates arrive in ascending
  // global id order (per-segment ascending, bases increasing), so the heap
  // evolves exactly as TopK over the concatenated full results would.
  TopKAccumulator acc(k);
  bool engine_resolved = false;
  for (size_t i = 0; i < segments_.size(); ++i) {
    FTS_RETURN_IF_ERROR(ctx.deadline().Check());
    const SegmentEngines& se = *segments_[i];
    const InvertedIndex& index = *snapshot_->segment(i).index;
    const NodeId base = snapshot_->segment(i).base;

    bool use_block_max = block_max_eligible;
    if (use_block_max && options_.mode == CursorMode::kAdaptive) {
      use_block_max = PlanBlockMax(k, EstimateCandidates(normalized, index));
    }

    if (use_block_max) {
      // The exact model a full BOOL evaluation of this segment would use:
      // same query tokens, same snapshot-global stats — so block-max
      // scores (and the bounds derived from them) are bit-identical and
      // comparable across segments.
      const SegmentScoringStats* stats = se.runtime.scoring;
      std::unique_ptr<AlgebraScoreModel> model;
      if (options_.scoring == ScoringKind::kTfIdf) {
        std::vector<std::string> tokens;
        CollectSurfaceTokens(normalized, &tokens);
        model = std::make_unique<TfIdfScoreModel>(
            snapshot_->segment(i).index, std::move(tokens), nullptr, stats);
      } else {
        model = std::make_unique<ProbabilisticScoreModel>(
            snapshot_->segment(i).index, stats);
      }
      EvalCounters seg_counters;
      FTS_RETURN_IF_ERROR(EvaluateBlockMaxTopK(index, normalized, *model,
                                               &se.runtime, ctx, base, acc,
                                               &seg_counters));
      out.result.counters.MergeFrom(seg_counters);
      if (!engine_resolved) {
        // Block-max trees are BOOL-class by construction.
        out.engine = std::string(se.bool_engine.name());
        engine_resolved = true;
      }
      continue;
    }

    const Engine* engine = SelectEngine(se, out.language_class);
    StatusOr<QueryResult> result = engine->Evaluate(query, ctx);
    if (!result.ok() && result.status().code() == StatusCode::kUnsupported &&
        engine != &se.comp_engine) {
      result = se.comp_engine.Evaluate(query, ctx);
      engine = &se.comp_engine;
    }
    FTS_RETURN_IF_ERROR(result.status());
    if (!engine_resolved) {
      out.engine = std::string(engine->name());
      engine_resolved = true;
    }
    QueryResult seg_result = std::move(result).value();
    for (size_t j = 0; j < seg_result.nodes.size(); ++j) {
      acc.Add(base + seg_result.nodes[j],
              seg_result.scores.empty() ? 0.0 : seg_result.scores[j]);
    }
    out.result.counters.MergeFrom(seg_result.counters);
  }

  std::vector<ScoredNode> top = acc.Take();
  const bool scored = options_.scoring != ScoringKind::kNone;
  out.result.nodes.reserve(top.size());
  if (scored) out.result.scores.reserve(top.size());
  for (const ScoredNode& s : top) {
    out.result.nodes.push_back(s.node);
    if (scored) out.result.scores.push_back(s.score);
  }
  return out;
}

}  // namespace fts
