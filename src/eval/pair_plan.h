// Multi-index planning and evaluation for phrase/NEAR-shaped plans over
// the auxiliary pair lists (index/pair_index.h, docs/pair_index.md).
//
// PPRED/NPRED compilation turns `dist(a, b, k)` (and its ordered variant)
// into Project* ( Select[distance/odistance] ( Project* ( Join(Token a,
// Token b) ) ) ). For that shape the pair index can answer the whole
// operator from one list whose length is the *result* cardinality: the
// classic frequent-term worst case — both driver lists huge, nearly every
// decoded position discarded — collapses to a single skip-seekable read.
// This is the planner's first choice between indexes, extending the
// PlanFromDfs seek-vs-sequential decision one level up.
//
// Exactness: the routed evaluation reproduces the position pipeline bit
// for bit (nodes and scores).
//   - Node set: a pair list stores every co-occurrence with |offset
//     delta| <= max_distance + 1, which the distance/odistance Eval
//     conventions (|d| <= k+1, resp. 0 < d <= k+1) are contained in for
//     any query k <= max_distance; an eligible key that is absent proves
//     the result empty.
//   - Scores: the pipeline's score for this shape is SelectScore(
//     JoinScore(EntryScore(a), 1, EntryScore(b), 1), pred, witness,
//     consts), where the witness is the satisfying position pair the
//     select cursor rests on. The select walk's advance rule lands on the
//     coordinatewise-minimal satisfying pair (each advance only skips
//     positions that cannot satisfy with any current-or-future partner),
//     so the witness is recomputable from the records alone as the
//     lexicographic minimum of (off_a, off_b) over satisfying records —
//     which is what EvaluatePairPlan selects, and the stored per-node term
//     frequencies feed the identical EntryScore calls.

#ifndef FTS_EVAL_PAIR_PLAN_H_
#define FTS_EVAL_PAIR_PLAN_H_

#include <string>
#include <vector>

#include "algebra/fta.h"
#include "eval/engine.h"
#include "index/pair_index.h"

namespace fts {

/// A pair-routable plan shape. `token_a` supplies the predicate's first
/// position argument and `token_b` the second (after composing the
/// Project column maps down to the join's leaf columns).
struct PairPlanMatch {
  std::string token_a;
  std::string token_b;
  const PositionPredicate* pred = nullptr;
  std::vector<int64_t> consts;
};

/// Structural matcher: true when `plan` is exactly the phrase/NEAR shape
/// described above, with a binary distance/odistance predicate over two
/// *distinct* token leaves. Projects above the select are ignored (they
/// change neither the node set nor node-level scores); Projects below it
/// are composed to map the select's columns onto the join columns.
bool MatchPairablePlan(const FtaExprPtr& plan, PairPlanMatch* out);

/// A resolved route to the pair index.
struct PairRoute {
  PairIndex::Lookup lookup;
  TokenId id_a = kInvalidToken;
  TokenId id_b = kInvalidToken;
  /// The canonical key exists in no list: the operator provably matches
  /// nothing, and evaluation emits an empty result without any reads.
  bool empty = false;
};

/// Routing decision for a matched shape. Returns false when the operator
/// should run on the position pipeline: no pair index, query distance
/// beyond the built window, neither token frequent, an OOV token (the
/// pipeline terminates instantly on an empty driver), routing kOff, or
/// kAuto outside CursorMode::kAdaptive / losing the cost comparison.
/// Costing uses block-header dfs — global (snapshot/shard-summed) dfs
/// from `stats` when present, each pair df travelling under its
/// PairIndex::StatsKey — against the pair list's own header shape.
bool PlanPairRoute(const PairPlanMatch& match, const InvertedIndex& index,
                   const SegmentScoringStats* stats, CursorMode mode,
                   PairRouting routing, const AdaptivePlannerOptions& opts,
                   PairRoute* out);

/// Evaluates a routed operator: walks the pair list through a
/// BlockListCursor (inheriting block caches, tombstone filtering, and
/// first-touch validation), appends matching nodes (ascending) and — when
/// `model` is non-null — pipeline-identical scores. Charges pair_seeks
/// once, pair_entries_decoded per entry, and predicate_evals per record
/// tried. Fails closed with Corruption on malformed records and checks
/// `deadline` periodically.
Status EvaluatePairPlan(const PairPlanMatch& match, const PairRoute& route,
                        const InvertedIndex& index,
                        const AlgebraScoreModel* model, EvalCounters* counters,
                        DecodedBlockCache* cache, const Deadline* deadline,
                        const TombstoneSet* tombstones,
                        std::vector<NodeId>* nodes,
                        std::vector<double>* scores);

/// The one-stop hook the PPRED/NPRED engines call after compiling a plan:
/// match + route + evaluate. Returns true when the query was answered via
/// the pair index (`result` filled, counters charged), false to fall
/// through to the position pipeline, or an error status from evaluation.
/// Never fires for differential raw-oracle runs (callers must not invoke
/// it then) — the oracle exercises the pipeline by definition.
StatusOr<bool> TryEvaluatePairPlan(const FtaExprPtr& plan,
                                   const InvertedIndex& index,
                                   const AlgebraScoreModel* model,
                                   CursorMode mode, PairRouting routing,
                                   const SegmentRuntime* segment,
                                   ExecContext& ectx, QueryResult* result);

}  // namespace fts

#endif  // FTS_EVAL_PAIR_PLAN_H_
