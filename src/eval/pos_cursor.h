// Pipelined position cursors: the operator API of paper Section 5.5.3.
//
// Every operator in a PPRED/NPRED plan exposes the same four operations —
//
//   AdvanceNode()             move to the next node with at least one tuple,
//                             positioned on that node's minimal tuple
//   node()                    current node id
//   AdvancePosition(col, off) seek to the minimal tuple of the current node
//                             whose column `col` has offset >= off
//   position(col)             current position of a column
//
// — so a whole plan evaluates in one pipelined pass over the inverted
// lists, materializing nothing (Algorithms 1-5). The select operator
// implements advancePosUntilSat: positive predicates skip via the
// Definition 1 advance bounds; negative predicates advance the cursor
// currently holding the largest position (Algorithm 7), relying on the
// NPRED driver to pin orderings via `le` selections underneath.
//
// BuildPipeline instantiates a cursor tree from an FTA plan; plans
// containing operators the pipeline cannot stream (IL_ANY scans,
// SearchContext complements, general-class predicates) are rejected with
// Unsupported so callers can fall back to materialized COMP evaluation.

#ifndef FTS_EVAL_POS_CURSOR_H_
#define FTS_EVAL_POS_CURSOR_H_

#include <memory>

#include "algebra/fta.h"
#include "common/metrics.h"
#include "common/status.h"
#include "eval/engine.h"
#include "index/inverted_index.h"
#include "scoring/score_model.h"

namespace fts {

class DecodedBlockCache;  // index/decoded_block_cache.h

/// Pipelined operator cursor (the Section 5.5.3 API).
class PosCursor {
 public:
  virtual ~PosCursor() = default;

  /// Number of position columns this operator exposes.
  virtual size_t num_cols() const = 0;

  /// Advances to the next context node that has at least one result tuple
  /// and positions on its minimal tuple. Returns kInvalidNode at the end.
  virtual NodeId AdvanceNode() = 0;

  /// Positions on the first result node with id >= `target` (starting the
  /// cursor if needed; never moving backwards) and returns it, or
  /// kInvalidNode when no such node exists. The default implementation
  /// steps with AdvanceNode, preserving the paper's sequential access
  /// counts; scans in seek mode override it with skip-based SeekEntry, and
  /// joins use it for zig-zag alignment.
  virtual NodeId SeekNode(NodeId target);

  /// Current node (kInvalidNode before the first AdvanceNode / at the end).
  virtual NodeId node() const = 0;

  /// Seeks, within the current node, to the minimal tuple whose column
  /// `col` has offset >= `min_offset`. Returns false when no such tuple
  /// exists in this node.
  virtual bool AdvancePosition(size_t col, uint32_t min_offset) = 0;

  /// Position of column `col` in the current tuple.
  virtual PositionInfo position(size_t col) const = 0;

  /// Node-level score of the current node (structure-driven: scans fold
  /// their entry's static scores, joins/unions combine child scores per the
  /// score model). 0 when no model is attached.
  virtual double node_score() const = 0;
};

/// Shared construction context for a pipeline. Scans always read the
/// block-resident lists; `raw_oracle` (differential tests only) swaps the
/// leaf cursors for raw ListCursors over the oracle table, leaving every
/// operator above them untouched. `mode` must be a resolved mode
/// (kSequential or kSeek) — engines run kAdaptive through
/// PlanPipelineCursorMode before building. `cache`, when set, is shared by
/// every leaf scan of the pipeline (and across the per-ordering pipelines
/// of one NPRED query), so re-scanned hot blocks decode once.
struct PipelineContext {
  const InvertedIndex* index = nullptr;
  const AlgebraScoreModel* model = nullptr;  // nullable
  EvalCounters* counters = nullptr;          // nullable
  CursorMode mode = CursorMode::kSequential;
  const RawPostingOracle* raw_oracle = nullptr;  // differential tests only
  DecodedBlockCache* cache = nullptr;            // nullable, per-query
  /// Sticky decode-error slot (first error wins). Leaf scans copy their
  /// list cursor's status here when a lazily validated block fails its
  /// first-touch decode: the scan exhausts (failing closed, so the
  /// pipeline terminates normally) and the engine checks this slot after
  /// draining, turning a silently truncated result into an error.
  Status* status = nullptr;  // nullable
  /// Optional wall-clock bound from the query's ExecContext. DrainPipeline
  /// checks it every few thousand result nodes and stops early, reporting
  /// DeadlineExceeded through `status` — the same channel as lazily
  /// detected corruption, so engines already propagate it.
  const Deadline* deadline = nullptr;  // nullable
  /// Segment tombstones when the pipeline runs over one segment of a
  /// snapshot: leaf cursors filter deleted nodes, so no operator above
  /// them ever sees a tombstoned entry. Null on the standalone-index path.
  const TombstoneSet* tombstones = nullptr;  // nullable
};

/// Sentinel for PlanPipelineCursorMode's `observed_cardinality`: no
/// measured intermediate size is available, plan from static estimates.
inline constexpr uint64_t kNoObservedCardinality = ~0ull;

/// Resolves `requested` for one pipelined plan: forced modes pass through;
/// kAdaptive estimates the size of each stream the pipeline will zig-zag
/// (structural bottom-up from the list headers: token → df, join and
/// intersect → min of the inputs, union → sum, select/project → the
/// child, antijoin/difference → the left side) and applies PlanFromDfs to
/// those estimates. Nested operators thus plan from their inputs'
/// combined cardinalities instead of raw leaf dfs — a union of two dense
/// tokens no longer masquerades as two independent driver candidates.
/// `observed_cardinality`, when not kNoObservedCardinality, is a real
/// measured intermediate size — e.g. the smallest result among the NPRED
/// orderings already evaluated for this query — added as one more driver
/// candidate, so later pipelines of the same query plan from observed
/// cardinalities rather than static statistics alone. Either way the
/// chosen mode only changes the access pattern, never the result.
CursorMode PlanPipelineCursorMode(
    CursorMode requested, const FtaExprPtr& plan, const InvertedIndex& index,
    const AdaptivePlannerOptions& opts = {},
    uint64_t observed_cardinality = kNoObservedCardinality);

/// Builds a pipelined cursor tree for `plan`. Returns Unsupported when the
/// plan contains operators outside the streaming subset (see file header).
StatusOr<std::unique_ptr<PosCursor>> BuildPipeline(const FtaExprPtr& plan,
                                                   const PipelineContext& ctx);

/// Runs a zero-or-more-column pipeline to completion, collecting each
/// matching node (and its score when `want_scores`). `ctx` supplies the
/// deadline (checked periodically; expiry stops the drain and reports
/// through ctx.status) — pass the same context the pipeline was built
/// with.
void DrainPipeline(PosCursor* cursor, bool want_scores,
                   std::vector<NodeId>* nodes, std::vector<double>* scores,
                   const PipelineContext& ctx = {});

}  // namespace fts

#endif  // FTS_EVAL_POS_CURSOR_H_
