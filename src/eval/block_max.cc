#include "eval/block_max.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "index/block_posting_list.h"
#include "index/decoded_block_cache.h"

namespace fts {

bool BlockMaxSupports(const LangExprPtr& normalized) {
  if (!normalized) return false;
  switch (normalized->kind()) {
    case LangExpr::Kind::kToken:
      return true;
    case LangExpr::Kind::kAnd:
    case LangExpr::Kind::kOr:
      return BlockMaxSupports(normalized->left()) &&
             BlockMaxSupports(normalized->right());
    default:
      return false;
  }
}

namespace {

constexpr uint64_t kForever = std::numeric_limits<uint64_t>::max();

/// One token leaf: its cursor (the only thing that decodes blocks), the
/// precomputed per-block impact upper bounds, and the shallow frontier
/// `sb` — the first block whose max_node could reach the current probe.
/// The frontier moves forward without touching compressed bytes; only
/// deep evaluation moves the cursor.
struct BmLeaf {
  BmLeaf(TokenId id_in, const BlockPostingList* list_in, EvalCounters* counters,
         DecodedBlockCache* cache, const TombstoneSet* tombstones)
      : id(id_in), list(list_in),
        cursor(list_in, counters, cache, tombstones) {}

  TokenId id;
  const BlockPostingList* list;  // null for OOV tokens
  BlockListCursor cursor;
  std::vector<double> block_ub;  // per block; +inf when !has_block_max()
  size_t sb = 0;                 // shallow frontier block index

  size_t num_blocks() const { return list ? list->num_blocks() : 0; }
};

/// Flattened expression node; children by index into the tree vector.
struct BmNode {
  LangExpr::Kind kind = LangExpr::Kind::kToken;
  int left = -1;
  int right = -1;
  int leaf = -1;  // index into the leaf vector (kToken only)
};

/// What EvalBound knows about one expression over the id range starting at
/// the probe: either no match exists through `until` (inclusive), or any
/// match in [probe, until] scores at most `ub`.
struct Bound {
  bool absent = false;
  double ub = 0.0;
  uint64_t until = kForever;
};

Bound Absent(uint64_t until) { return Bound{true, 0.0, until}; }
Bound Bounded(double ub, uint64_t until) { return Bound{false, ub, until}; }

class BlockMaxEvaluator {
 public:
  BlockMaxEvaluator(const InvertedIndex& index, const AlgebraScoreModel& model,
                    EvalCounters* counters, DecodedBlockCache* cache,
                    const TombstoneSet* tombstones)
      : index_(index), model_(model), counters_(counters), cache_(cache),
        tombstones_(tombstones) {}

  Status Run(const LangExprPtr& expr, ExecContext& ctx, NodeId base,
             TopKAccumulator& acc) {
    FTS_RETURN_IF_ERROR(ctx.deadline().Check());
    const int root = BuildNode(expr);
    if (root < 0) return Status::Unsupported("block-max: unsupported operator");

    const uint64_t num_nodes = index_.num_nodes();
    uint64_t d = 0;
    uint64_t iter = 0;
    while (d < num_nodes) {
      if ((++iter & 1023u) == 0) FTS_RETURN_IF_ERROR(ctx.deadline().Check());
      const Bound b = EvalBound(root, d);
      if (b.absent) {
        // No match anywhere in [d, until]: hop the whole range. These are
        // structural skips — a zig-zag join makes them too — so they are
        // not charged to blocks_skipped_by_score.
        if (b.until >= num_nodes - 1) break;
        d = b.until + 1;
        continue;
      }
      if (acc.full() && b.ub <= acc.threshold()) {
        // Nothing in [d, until] can beat the heap's weakest entry: a score
        // of exactly threshold() still loses the tie-break (every id in
        // the heap is smaller than d — candidates arrive ascending).
        const uint64_t next =
            b.until >= num_nodes - 1 ? num_nodes : b.until + 1;
        ChargeScoreSkip(next);
        if (next >= num_nodes) break;
        d = next;
        continue;
      }
      double score = 0.0;
      if (DeepEval(root, static_cast<NodeId>(d), &score)) {
        acc.Add(base + static_cast<NodeId>(d), score);
      }
      ++d;
    }
    for (const BmLeaf& leaf : leaves_) {
      FTS_RETURN_IF_ERROR(leaf.cursor.status());
    }
    return Status::OK();
  }

 private:
  /// Builds the flat tree bottom-up; -1 on unsupported operators (callers
  /// gate on BlockMaxSupports, so this is belt and braces).
  int BuildNode(const LangExprPtr& e) {
    switch (e->kind()) {
      case LangExpr::Kind::kToken: {
        const TokenId id = index_.LookupToken(e->token());
        BmNode node;
        node.kind = LangExpr::Kind::kToken;
        node.leaf = static_cast<int>(leaves_.size());
        leaves_.emplace_back(id, index_.block_list(id), counters_, cache_,
                             tombstones_);
        BmLeaf& leaf = leaves_.back();
        if (leaf.list != nullptr) {
          const bool bounded = leaf.list->has_block_max();
          leaf.block_ub.reserve(leaf.list->num_blocks());
          for (const BlockPostingList::SkipEntry& s : leaf.list->skips()) {
            leaf.block_ub.push_back(
                bounded ? model_.EntryScoreUpperBound(index_, id, s.max_tf)
                        : std::numeric_limits<double>::infinity());
          }
        }
        tree_.push_back(node);
        return static_cast<int>(tree_.size()) - 1;
      }
      case LangExpr::Kind::kAnd:
      case LangExpr::Kind::kOr: {
        const int l = BuildNode(e->left());
        if (l < 0) return -1;
        const int r = BuildNode(e->right());
        if (r < 0) return -1;
        BmNode node;
        node.kind = e->kind();
        node.left = l;
        node.right = r;
        tree_.push_back(node);
        return static_cast<int>(tree_.size()) - 1;
      }
      default:
        return -1;
    }
  }

  /// Upper-bound combinators. The model's JoinScore/UnionBoth are monotone
  /// in each score argument over the model's score range (sums for TfIdf,
  /// products / noisy-or over [0,1] for probabilistic), so combining upper
  /// bounds yields an upper bound. +inf (an unbounded v2/v3 list) must be
  /// propagated without calling the model: the probabilistic expressions
  /// multiply, and inf * 0 is NaN.
  double CombineAnd(double l, double r) const {
    if (std::isinf(l) || std::isinf(r)) {
      return std::numeric_limits<double>::infinity();
    }
    return model_.JoinScore(l, 1, r, 1);
  }
  double CombineOr(double l, double r) const {
    if (std::isinf(l) || std::isinf(r)) {
      return std::numeric_limits<double>::infinity();
    }
    return model_.UnionBoth(l, r);
  }

  /// Advances the shallow frontier to the first block whose max_node can
  /// reach `d`. Monotone and decode-free.
  static void ShallowSeek(BmLeaf& leaf, uint64_t d) {
    const size_t nb = leaf.num_blocks();
    while (leaf.sb < nb && leaf.list->skip(leaf.sb).max_node < d) ++leaf.sb;
  }

  Bound LeafBound(BmLeaf& leaf, uint64_t d) {
    if (leaf.cursor.exhausted()) return Absent(kForever);
    // Keep the frontier synced to the probe even when the cursor answers:
    // frontier moves here are structural, so a later score skip charges
    // only the blocks it actually hops.
    ShallowSeek(leaf, d);
    if (leaf.cursor.current_block() != SIZE_MAX) {
      const uint64_t cur = leaf.cursor.current_node();
      if (cur > d) return Absent(cur - 1);
      if (cur == d) {
        // The cursor rests on the probe. The block's precomputed bound is
        // sound for any entry inside it and O(1); computing the exact
        // entry score here would double the scoring work of every
        // candidate that survives to DeepEval.
        const size_t resident = leaf.cursor.current_block();
        return Bounded(resident < leaf.block_ub.size()
                           ? leaf.block_ub[resident]
                           : std::numeric_limits<double>::infinity(),
                       d);
      }
      // cur < d: the cursor is stale for this probe; use the block bound.
    }
    if (leaf.sb >= leaf.num_blocks()) return Absent(kForever);
    return Bounded(leaf.block_ub[leaf.sb], leaf.list->skip(leaf.sb).max_node);
  }

  /// Bounds `node` over ids starting at `d` without decoding anything.
  Bound EvalBound(int node, uint64_t d) {
    const BmNode& n = tree_[node];
    if (n.kind == LangExpr::Kind::kToken) return LeafBound(leaves_[n.leaf], d);
    const Bound l = EvalBound(n.left, d);
    const Bound r = EvalBound(n.right, d);
    if (n.kind == LangExpr::Kind::kAnd) {
      // Absent while either side is absent: the union of the two absent
      // prefixes is [d, max(until)].
      if (l.absent && r.absent) return Absent(std::max(l.until, r.until));
      if (l.absent) return l;
      if (r.absent) return r;
      return Bounded(CombineAnd(l.ub, r.ub), std::min(l.until, r.until));
    }
    // OR: absent only while both sides are.
    if (l.absent && r.absent) return Absent(std::min(l.until, r.until));
    if (l.absent) return Bounded(r.ub, std::min(l.until, r.until));
    if (r.absent) return Bounded(l.ub, std::min(l.until, r.until));
    return Bounded(CombineOr(l.ub, r.ub), std::min(l.until, r.until));
  }

  /// Exact evaluation of `node` at id `d`. Mirrors BoolEvaluator's score
  /// expressions operator for operator — EntryScore at leaves,
  /// JoinScore(l, 1, r, 1) at AND, UnionBoth / single-side copy at OR — so
  /// matching nodes get bit-identical doubles to a full evaluation.
  bool DeepEval(int node, NodeId d, double* score) {
    const BmNode& n = tree_[node];
    switch (n.kind) {
      case LangExpr::Kind::kToken: {
        BmLeaf& leaf = leaves_[n.leaf];
        if (leaf.cursor.SeekEntry(d) != d) return false;
        *score =
            model_.EntryScore(index_, leaf.id, d, leaf.cursor.pos_count());
        return true;
      }
      case LangExpr::Kind::kAnd: {
        double ls = 0.0;
        double rs = 0.0;
        if (!DeepEval(n.left, d, &ls)) return false;
        if (!DeepEval(n.right, d, &rs)) return false;
        *score = model_.JoinScore(ls, 1, rs, 1);
        return true;
      }
      default: {  // kOr
        double ls = 0.0;
        double rs = 0.0;
        const bool lm = DeepEval(n.left, d, &ls);
        const bool rm = DeepEval(n.right, d, &rs);
        if (lm && rm) {
          *score = model_.UnionBoth(ls, rs);
          return true;
        }
        if (lm) *score = ls;
        if (rm) *score = rs;
        return lm || rm;
      }
    }
  }

  /// Charges blocks hopped by a score skip to `next_d` (the first id that
  /// will be probed again). Counts, per leaf, frontier blocks passed over
  /// that the cursor never decoded — the resident block (and anything at
  /// or before it) was already paid for, and an exhausted cursor's
  /// remaining blocks were structurally unreachable, not score-skipped.
  void ChargeScoreSkip(uint64_t next_d) {
    for (BmLeaf& leaf : leaves_) {
      const size_t nb = leaf.num_blocks();
      if (leaf.cursor.exhausted()) {
        leaf.sb = nb;
        continue;
      }
      size_t lo = leaf.sb;
      ShallowSeek(leaf, next_d);
      const size_t resident = leaf.cursor.current_block();
      if (resident != SIZE_MAX && resident + 1 > lo) lo = resident + 1;
      if (leaf.sb > lo) counters_->blocks_skipped_by_score += leaf.sb - lo;
    }
  }

  const InvertedIndex& index_;
  const AlgebraScoreModel& model_;
  EvalCounters* counters_;
  DecodedBlockCache* cache_;
  const TombstoneSet* tombstones_;
  std::vector<BmNode> tree_;
  std::vector<BmLeaf> leaves_;
};

}  // namespace

Status EvaluateBlockMaxTopK(const InvertedIndex& index,
                            const LangExprPtr& normalized,
                            const AlgebraScoreModel& model,
                            const SegmentRuntime* runtime, ExecContext& ctx,
                            NodeId base, TopKAccumulator& acc,
                            EvalCounters* query_counters) {
  const TombstoneSet* tombstones = runtime ? runtime->tombstones : nullptr;
  // Same cache-attachment decision the BOOL engine makes for this query:
  // attach only when some list is read twice and the working set fits (or
  // an L2 is present). Supported trees have no ANY leaves.
  std::vector<std::string> tokens;
  CollectSurfaceTokens(normalized, &tokens);
  DecodedBlockCache* cache =
      ctx.WantCache(
          DecodedBlockCache::ShouldAttach(index, std::move(tokens), 0))
          ? &ctx.l1_cache()
          : nullptr;
  EvalCounters counters;
  BlockMaxEvaluator evaluator(index, model, &counters, cache, tombstones);
  const Status st = evaluator.Run(normalized, ctx, base, acc);
  ctx.counters().MergeFrom(counters);
  if (query_counters != nullptr) query_counters->MergeFrom(counters);
  return st;
}

}  // namespace fts
