#include "eval/engine.h"

namespace fts {

const char* ScoringKindToString(ScoringKind kind) {
  switch (kind) {
    case ScoringKind::kNone: return "none";
    case ScoringKind::kTfIdf: return "tfidf";
    case ScoringKind::kProbabilistic: return "probabilistic";
  }
  return "?";
}

}  // namespace fts
