#include "eval/engine.h"

namespace fts {

const char* ScoringKindToString(ScoringKind kind) {
  switch (kind) {
    case ScoringKind::kNone: return "none";
    case ScoringKind::kTfIdf: return "tfidf";
    case ScoringKind::kProbabilistic: return "probabilistic";
  }
  return "?";
}

const char* CursorModeToString(CursorMode mode) {
  switch (mode) {
    case CursorMode::kSequential: return "sequential";
    case CursorMode::kSeek: return "seek";
    case CursorMode::kAdaptive: return "adaptive";
  }
  return "?";
}

const char* PairRoutingToString(PairRouting routing) {
  switch (routing) {
    case PairRouting::kAuto: return "auto";
    case PairRouting::kForce: return "force";
    case PairRouting::kOff: return "off";
  }
  return "?";
}

CursorMode PlanFromDfs(std::span<const uint64_t> dfs,
                       const AdaptivePlannerOptions& opts) {
  if (dfs.size() < 2) return CursorMode::kSequential;
  uint64_t min_df = dfs[0];
  uint64_t sum = 0;
  for (uint64_t df : dfs) {
    sum += df;
    if (df < min_df) min_df = df;
  }
  // An empty (df 0) list — an OOV token, an empty intermediate set — is
  // the most selective driver possible: 0 * threshold <= others always
  // holds, so the zig-zag runs and terminates before decoding anything
  // from the other side.
  const double others = static_cast<double>(sum - min_df);
  return static_cast<double>(min_df) * opts.selectivity_threshold <= others
             ? CursorMode::kSeek
             : CursorMode::kSequential;
}

bool PlanBlockMax(size_t top_k, uint64_t estimated_candidates,
                  const AdaptivePlannerOptions& opts) {
  if (top_k == 0) return false;
  return static_cast<double>(top_k) * opts.selectivity_threshold <=
         static_cast<double>(estimated_candidates);
}

}  // namespace fts
