#include "eval/engine.h"

namespace fts {

const char* ScoringKindToString(ScoringKind kind) {
  switch (kind) {
    case ScoringKind::kNone: return "none";
    case ScoringKind::kTfIdf: return "tfidf";
    case ScoringKind::kProbabilistic: return "probabilistic";
  }
  return "?";
}

const char* CursorModeToString(CursorMode mode) {
  switch (mode) {
    case CursorMode::kSequential: return "sequential";
    case CursorMode::kSeek: return "seek";
  }
  return "?";
}

}  // namespace fts
