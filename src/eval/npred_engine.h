// NPRED evaluation (paper Section 5.6): pipelined scans extended to
// negative predicates. Because a negative predicate can only be satisfied
// by widening the gap between its smallest and largest positions, the
// engine runs one pipelined pass per ordering of the negative-predicate
// cursors — pinning each ordering with positive `le` selections — and
// unions the per-thread results (Algorithms 6-7).
//
// Two ordering strategies are provided, matching the remark at the end of
// Section 5.6.2: the naive one enumerates all toks_Q! total orders of the
// query's position variables; the optimized one (the paper's "only the
// necessary partial orders", our default) permutes only the variables that
// negative predicates actually mention.

#ifndef FTS_EVAL_NPRED_ENGINE_H_
#define FTS_EVAL_NPRED_ENGINE_H_

#include "eval/engine.h"

namespace fts {

/// How NPRED enumerates cursor orderings.
enum class NpredOrderingMode {
  /// Permute only variables used in negative predicates (default).
  kNecessaryPartialOrders,
  /// Permute every quantified variable (the naive toks_Q! scheme); kept for
  /// the ablation benchmark.
  kAllTotalOrders,
};

/// Per-ordering pipelined evaluator for the NPRED class.
class NpredEngine : public Engine {
 public:
  /// `index` must outlive the engine; `segment` (nullable) carries the
  /// tombstones and global scoring stats when `index` is one segment of a
  /// snapshot (see SegmentRuntime).
  NpredEngine(const InvertedIndex* index, ScoringKind scoring,
              NpredOrderingMode mode = NpredOrderingMode::kNecessaryPartialOrders,
              CursorMode cursor_mode = CursorMode::kSequential,
              const SegmentRuntime* segment = nullptr)
      : index_(index),
        scoring_(scoring),
        mode_(mode),
        cursor_mode_(cursor_mode),
        segment_(segment) {}

  std::string_view name() const override { return "NPRED"; }

  using Engine::Evaluate;
  StatusOr<QueryResult> Evaluate(const LangExprPtr& query,
                                 ExecContext& ctx) const override;

  CursorMode cursor_mode() const { return cursor_mode_; }

  /// Whether phrase/NEAR-shaped plans may route to the pair index on the
  /// no-negative-predicates single-pass path (src/eval/pair_plan.h). Set
  /// once at construction time; the Searcher threads it from
  /// SearcherOptions. The ordering-enumeration path never routes — its
  /// plans carry `le` selections outside the pairable shape.
  void set_pair_routing(PairRouting routing) { pair_routing_ = routing; }
  PairRouting pair_routing() const { return pair_routing_; }

  /// Differential-test seam: run the identical per-ordering pipelines over
  /// `oracle`'s raw lists instead of the block-resident ones. While
  /// attached, pair routing never fires.
  void set_raw_oracle_for_test(const RawPostingOracle* oracle) {
    raw_oracle_ = oracle;
  }

 private:
  const InvertedIndex* index_;
  ScoringKind scoring_;
  NpredOrderingMode mode_;
  CursorMode cursor_mode_;
  const SegmentRuntime* segment_;
  PairRouting pair_routing_ = PairRouting::kAuto;
  const RawPostingOracle* raw_oracle_ = nullptr;
};

}  // namespace fts

#endif  // FTS_EVAL_NPRED_ENGINE_H_
