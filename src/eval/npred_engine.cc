#include "eval/npred_engine.h"

#include <algorithm>
#include <map>
#include <memory>
#include <numeric>

#include "calculus/analysis.h"
#include "compile/ftc_to_fta.h"
#include "eval/pair_plan.h"
#include "eval/pos_cursor.h"
#include "index/decoded_block_cache.h"
#include "lang/translate.h"
#include "scoring/probabilistic.h"
#include "scoring/tfidf.h"

namespace fts {

namespace {

/// Collects, in first-occurrence order, the distinct variables used by
/// negative predicates (and, for the total-order mode, all quantified
/// variables).
void CollectVars(const CalcExprPtr& e, bool all_quantified,
                 std::vector<VarId>* out) {
  if (!e) return;
  auto add = [out](VarId v) {
    if (std::find(out->begin(), out->end(), v) == out->end()) out->push_back(v);
  };
  switch (e->kind()) {
    case CalcExpr::Kind::kHasPos:
    case CalcExpr::Kind::kHasToken:
      return;
    case CalcExpr::Kind::kPred:
      if (!all_quantified &&
          e->pred().pred->cls() == PredicateClass::kNegative) {
        for (VarId v : e->pred().vars) add(v);
      }
      return;
    case CalcExpr::Kind::kNot:
      CollectVars(e->child(), all_quantified, out);
      return;
    case CalcExpr::Kind::kAnd:
    case CalcExpr::Kind::kOr:
      CollectVars(e->left(), all_quantified, out);
      CollectVars(e->right(), all_quantified, out);
      return;
    case CalcExpr::Kind::kExists:
    case CalcExpr::Kind::kForAll:
      if (all_quantified) add(e->var());
      CollectVars(e->child(), all_quantified, out);
      return;
  }
}

/// Rank-aware view of a negative predicate for one evaluation thread: the
/// "largest" argument is the maximal offset with ties broken by the
/// thread's ordering permutation. Ties occur when two variables scan the
/// same token list; breaking them against the permutation would make the
/// thread skip solutions.
class RankedNegativePredicate : public PositionPredicate {
 public:
  RankedNegativePredicate(const PositionPredicate* inner, std::vector<size_t> ranks)
      : inner_(inner), ranks_(std::move(ranks)) {}

  std::string_view name() const override { return inner_->name(); }
  int arity() const override { return inner_->arity(); }
  int num_constants() const override { return inner_->num_constants(); }
  PredicateClass cls() const override { return inner_->cls(); }

  bool Eval(std::span<const PositionInfo> positions,
            std::span<const int64_t> consts) const override {
    return inner_->Eval(positions, consts);
  }

  uint32_t NegativeAdvanceTarget(std::span<const PositionInfo> positions,
                                 std::span<const int64_t> consts,
                                 size_t largest) const override {
    return inner_->NegativeAdvanceTarget(positions, consts, largest);
  }

  double ScoreFactor(std::span<const PositionInfo> positions,
                     std::span<const int64_t> consts) const override {
    return inner_->ScoreFactor(positions, consts);
  }

  size_t LargestArgument(std::span<const PositionInfo> positions) const override {
    size_t mx = 0;
    for (size_t i = 1; i < positions.size(); ++i) {
      if (positions[i].offset > positions[mx].offset ||
          (positions[i].offset == positions[mx].offset &&
           ranks_[i] > ranks_[mx])) {
        mx = i;
      }
    }
    return mx;
  }

 private:
  const PositionPredicate* inner_;
  std::vector<size_t> ranks_;  // thread rank of each argument
};

/// Rewrites every negative-predicate atom P(v...) into
/// le(v_a, v_b) ∧ ... ∧ P(v...), where the le chain spells out the thread's
/// ordering restricted to P's variables, and replaces P with its
/// rank-aware view. The compiler stacks positive selections beneath
/// negative ones, so each negative selection only ever sees
/// ordering-consistent tuples (Algorithm 6's invariant). Adapter objects
/// are appended to `adapters` and must outlive the compiled plan.
CalcExprPtr InsertOrderingConstraints(
    const CalcExprPtr& e, const std::map<VarId, size_t>& rank,
    const PositionPredicate* le,
    std::vector<std::shared_ptr<const PositionPredicate>>* adapters) {
  if (!e) return e;
  switch (e->kind()) {
    case CalcExpr::Kind::kHasPos:
    case CalcExpr::Kind::kHasToken:
      return e;
    case CalcExpr::Kind::kPred: {
      if (e->pred().pred->cls() != PredicateClass::kNegative) return e;
      // Distinct variables of this predicate, sorted by thread rank.
      std::vector<VarId> vars;
      for (VarId v : e->pred().vars) {
        if (std::find(vars.begin(), vars.end(), v) == vars.end()) vars.push_back(v);
      }
      std::sort(vars.begin(), vars.end(), [&rank](VarId a, VarId b) {
        return rank.at(a) < rank.at(b);
      });
      // Rank-aware replacement of the predicate itself.
      std::vector<size_t> arg_ranks;
      arg_ranks.reserve(e->pred().vars.size());
      for (VarId v : e->pred().vars) arg_ranks.push_back(rank.at(v));
      auto adapter = std::make_shared<RankedNegativePredicate>(e->pred().pred,
                                                               std::move(arg_ranks));
      adapters->push_back(adapter);
      CalcExprPtr out =
          CalcExpr::Pred(adapter.get(), e->pred().vars, e->pred().consts);
      for (size_t i = 1; i < vars.size(); ++i) {
        out = CalcExpr::And(CalcExpr::Pred(le, {vars[i - 1], vars[i]}, {}),
                            std::move(out));
      }
      return out;
    }
    case CalcExpr::Kind::kNot:
      return CalcExpr::Not(InsertOrderingConstraints(e->child(), rank, le, adapters));
    case CalcExpr::Kind::kAnd:
      return CalcExpr::And(InsertOrderingConstraints(e->left(), rank, le, adapters),
                           InsertOrderingConstraints(e->right(), rank, le, adapters));
    case CalcExpr::Kind::kOr:
      return CalcExpr::Or(InsertOrderingConstraints(e->left(), rank, le, adapters),
                          InsertOrderingConstraints(e->right(), rank, le, adapters));
    case CalcExpr::Kind::kExists:
      return CalcExpr::Exists(e->var(),
                              InsertOrderingConstraints(e->child(), rank, le, adapters));
    case CalcExpr::Kind::kForAll:
      return CalcExpr::ForAll(e->var(),
                              InsertOrderingConstraints(e->child(), rank, le, adapters));
  }
  return e;
}

/// True when a negative predicate occurs anywhere under a negation: such
/// queries are outside NPRED (union-over-orderings does not commute with
/// complement) and must run on COMP.
bool HasNegativePredUnderNot(const CalcExprPtr& e, bool under_not) {
  if (!e) return false;
  switch (e->kind()) {
    case CalcExpr::Kind::kHasPos:
    case CalcExpr::Kind::kHasToken:
      return false;
    case CalcExpr::Kind::kPred:
      return under_not && e->pred().pred->cls() == PredicateClass::kNegative;
    case CalcExpr::Kind::kNot:
      return HasNegativePredUnderNot(e->child(), true);
    case CalcExpr::Kind::kAnd:
    case CalcExpr::Kind::kOr:
      return HasNegativePredUnderNot(e->left(), under_not) ||
             HasNegativePredUnderNot(e->right(), under_not);
    case CalcExpr::Kind::kExists:
    case CalcExpr::Kind::kForAll:
      return HasNegativePredUnderNot(e->child(), under_not);
  }
  return false;
}

}  // namespace

StatusOr<QueryResult> NpredEngine::Evaluate(const LangExprPtr& query,
                                            ExecContext& ectx) const {
  if (!query) return Status::InvalidArgument("null query");
  FTS_RETURN_IF_ERROR(ectx.deadline().Check());
  FTS_ASSIGN_OR_RETURN(CalcQuery calc, TranslateToCalculus(NormalizeSurface(query)));
  calc.expr = DesugarForAll(calc.expr);
  if (HasNegativePredUnderNot(calc.expr, false)) {
    return Status::Unsupported(
        "negative predicates under negation require COMP evaluation");
  }

  const SegmentScoringStats* stats =
      segment_ != nullptr ? segment_->scoring : nullptr;
  const TombstoneSet* tombstones =
      segment_ != nullptr ? segment_->tombstones : nullptr;
  std::unique_ptr<AlgebraScoreModel> model;
  if (scoring_ == ScoringKind::kTfIdf) {
    auto token_set = CollectTokens(calc.expr);
    model = std::make_unique<TfIdfScoreModel>(
        index_, std::vector<std::string>(token_set.begin(), token_set.end()),
        nullptr, stats);
  } else if (scoring_ == ScoringKind::kProbabilistic) {
    model = std::make_unique<ProbabilisticScoreModel>(index_, stats);
  }

  // The variables whose orderings the threads enumerate.
  std::vector<VarId> neg_vars;
  CollectVars(calc.expr, /*all_quantified=*/false, &neg_vars);
  std::vector<VarId> thread_vars;
  if (mode_ == NpredOrderingMode::kAllTotalOrders) {
    CollectVars(calc.expr, /*all_quantified=*/true, &thread_vars);
  } else {
    thread_vars = neg_vars;
  }
  if (thread_vars.size() > 8) {
    return Status::Unsupported("NPRED ordering enumeration over " +
                               std::to_string(thread_vars.size()) +
                               " variables is impractical");
  }

  const PositionPredicate* le = PredicateRegistry::Default().Find("le");
  QueryResult result;

  Status decode_status;  // set by leaf scans on first-touch decode failure

  if (neg_vars.empty()) {
    // No negative predicates: degenerate to a single PPRED-style pass; the
    // context's L1 only pays here if the plan itself scans a list twice
    // (or an L2 is attached).
    FTS_ASSIGN_OR_RETURN(FtaExprPtr plan, CompileQuery(calc));
    // Same multi-index hook as PpredEngine: the degenerate single pass may
    // answer a phrase/NEAR shape from one pair list.
    if (raw_oracle_ == nullptr) {
      QueryResult routed;
      FTS_ASSIGN_OR_RETURN(bool handled,
                           TryEvaluatePairPlan(plan, *index_, model.get(),
                                               cursor_mode_, pair_routing_,
                                               segment_, ectx, &routed));
      if (handled) {
        routed.counters.orderings_run = 1;
        ectx.counters().MergeFrom(routed.counters);
        return routed;
      }
    }
    DecodedBlockCache* cache =
        ectx.WantCache(ShouldUseDecodedBlockCache(plan, *index_))
            ? &ectx.l1_cache()
            : nullptr;
    PipelineContext ctx{index_,      model.get(),
                        &result.counters,
                        PlanPipelineCursorMode(cursor_mode_, plan, *index_),
                        raw_oracle_, cache,
                        &decode_status,
                        &ectx.deadline(),
                        tombstones};
    FTS_ASSIGN_OR_RETURN(std::unique_ptr<PosCursor> cursor, BuildPipeline(plan, ctx));
    DrainPipeline(cursor.get(), scoring_ != ScoringKind::kNone, &result.nodes,
                  &result.scores, ctx);
    FTS_RETURN_IF_ERROR(decode_status);
    result.counters.orderings_run = 1;
    ectx.counters().MergeFrom(result.counters);
    return result;
  }

  // One evaluation thread per ordering permutation; results are unioned.
  // All orderings share the context's L1 cache: each permutation re-scans
  // the same token lists, so every thread after the first finds its hot
  // blocks already decoded.
  std::map<NodeId, double> merged;
  std::vector<size_t> perm(thread_vars.size());
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end());
  // Smallest result cardinality observed across the orderings already run:
  // every ordering evaluates the same query, so any ordering's result size
  // bounds how selective the query really is. Later orderings hand it to
  // the adaptive planner as a measured driver candidate — real feedback
  // where the first ordering had only static dfs.
  uint64_t observed = kNoObservedCardinality;
  do {
    // Long ordering enumerations are exactly where a deadline matters:
    // check between permutations so an expired query stops at an ordering
    // boundary.
    FTS_RETURN_IF_ERROR(ectx.deadline().Check());
    std::map<VarId, size_t> rank;
    for (size_t i = 0; i < perm.size(); ++i) rank[thread_vars[perm[i]]] = i;
    // Variables outside the thread set (partial-order mode) never appear in
    // negative predicates, so InsertOrderingConstraints never ranks them.
    std::vector<std::shared_ptr<const PositionPredicate>> adapters;
    CalcQuery threaded{InsertOrderingConstraints(calc.expr, rank, le, &adapters)};
    FTS_ASSIGN_OR_RETURN(FtaExprPtr plan, CompileQuery(threaded));
    // Rescanning is guaranteed by the ordering loop itself, so the cache
    // attaches whenever the plan's working set fits it.
    DecodedBlockCache* cache =
        ectx.WantCache(PlanFitsDecodedBlockCache(plan, *index_))
            ? &ectx.l1_cache()
            : nullptr;
    // Per-ordering counters, merged below: the ordering loop aggregates
    // through EvalCounters::MergeFrom like every other multi-pass consumer
    // instead of sharing one struct across passes.
    EvalCounters ordering_counters;
    PipelineContext ctx{index_,      model.get(),
                        &ordering_counters,
                        PlanPipelineCursorMode(cursor_mode_, plan, *index_, {},
                                               observed),
                        raw_oracle_, cache,
                        &decode_status,
                        &ectx.deadline(),
                        tombstones};
    FTS_ASSIGN_OR_RETURN(std::unique_ptr<PosCursor> cursor, BuildPipeline(plan, ctx));
    std::vector<NodeId> nodes;
    std::vector<double> scores;
    DrainPipeline(cursor.get(), scoring_ != ScoringKind::kNone, &nodes, &scores,
                  ctx);
    result.counters.MergeFrom(ordering_counters);
    FTS_RETURN_IF_ERROR(decode_status);
    observed = std::min(observed, static_cast<uint64_t>(nodes.size()));
    for (size_t i = 0; i < nodes.size(); ++i) {
      merged.emplace(nodes[i], scoring_ != ScoringKind::kNone ? scores[i] : 0.0);
    }
    ++result.counters.orderings_run;
  } while (std::next_permutation(perm.begin(), perm.end()));

  result.nodes.reserve(merged.size());
  for (const auto& [node, score] : merged) {
    result.nodes.push_back(node);
    if (scoring_ != ScoringKind::kNone) result.scores.push_back(score);
  }
  ectx.counters().MergeFrom(result.counters);
  return result;
}

}  // namespace fts
