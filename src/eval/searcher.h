// Searcher: the snapshot-based evaluation entry point of the segment
// architecture (docs/ingestion.md). Evaluation over a live corpus routes
// through here — a Searcher binds one immutable IndexSnapshot generation
// and evaluates each query per segment, where the existing engines run
// unchanged over disjoint doc-id sub-spaces.

#ifndef FTS_EVAL_SEARCHER_H_
#define FTS_EVAL_SEARCHER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "eval/bool_engine.h"
#include "eval/comp_engine.h"
#include "eval/engine.h"
#include "eval/npred_engine.h"
#include "eval/ppred_engine.h"
#include "exec/exec_context.h"
#include "index/index_snapshot.h"
#include "lang/classify.h"
#include "lang/parser.h"

namespace fts {

/// A routed evaluation outcome.
struct RoutedResult {
  QueryResult result;
  LanguageClass language_class;
  /// Engine that produced the result. Resolved once from the first segment
  /// actually evaluated (the COMP-fallback decision is query-deterministic,
  /// so every segment agrees); "NONE" when the snapshot has no segments and
  /// nothing ran at all.
  std::string engine;
};

/// Construction knobs for a Searcher.
struct SearcherOptions {
  ScoringKind scoring = ScoringKind::kNone;
  CursorMode mode = CursorMode::kAdaptive;
  /// Phrase/NEAR routing to the pair index when segments carry one
  /// (src/eval/pair_plan.h). kAuto only fires under CursorMode::kAdaptive.
  PairRouting pair_routing = PairRouting::kAuto;
};

/// Evaluates queries over one IndexSnapshot generation.
///
/// The query is classified once (classification is query-only) and then
/// evaluated segment by segment: every segment gets its own engine bank
/// wired to a SegmentRuntime, so cursors filter that segment's tombstones
/// and score models read the snapshot-global statistics. Per-segment
/// results — each ascending in local node ids — are rebased by the
/// segment's global base and concatenated; since bases are disjoint and
/// increasing in segment order, the concatenation is globally ascending
/// with no merge step. An engine declining with Unsupported falls back to
/// COMP; the decision is query-deterministic, so all segments agree on the
/// serving engine.
///
/// The Searcher shares ownership of the snapshot: a query in flight keeps
/// its generation alive even after a writer publishes a newer one.
///
/// Thread safety: immutable after construction; evaluate from many threads
/// concurrently with one ExecContext per thread.
class Searcher {
 public:
  explicit Searcher(std::shared_ptr<const IndexSnapshot> snapshot,
                    SearcherOptions options = {});

  /// Parses `query` as COMP (the superset language) and evaluates it over
  /// every segment on the cheapest applicable engine.
  StatusOr<RoutedResult> Search(std::string_view query, ExecContext& ctx) const;

  /// As above for an already-parsed query. When ctx.top_k() is nonzero the
  /// result holds only the k best nodes in rank order (descending score,
  /// ties by ascending global node id — exactly TopK over the full
  /// evaluation); scored pure token/AND/OR queries may then take the
  /// block-max early-termination path (docs/index_format.md), chosen per
  /// segment by the same adaptive planner that picks seek vs sequential.
  /// The deadline is also checked between segments, so a multi-segment
  /// snapshot cannot overrun an expired deadline by whole segments.
  StatusOr<RoutedResult> SearchParsed(const LangExprPtr& query,
                                      ExecContext& ctx) const;

  const IndexSnapshot& snapshot() const { return *snapshot_; }

  /// Per-segment engine banks, exposed for the single-segment bridge
  /// (QueryRouter's engine accessors) and white-box tests.
  const CompEngine& comp_engine(size_t segment = 0) const;
  const BoolEngine& bool_engine(size_t segment = 0) const;
  const PpredEngine& ppred_engine(size_t segment = 0) const;
  const NpredEngine& npred_engine(size_t segment = 0) const;

 private:
  /// One segment's engines plus the runtime they point at. Heap-allocated
  /// so the runtime's address is stable for the engines' lifetime.
  struct SegmentEngines {
    SegmentEngines(const SegmentView& seg, const SearcherOptions& opts)
        : runtime{seg.tombstones, seg.scoring},
          bool_engine(seg.index, opts.scoring, opts.mode, &runtime),
          ppred_engine(seg.index, opts.scoring, opts.mode, &runtime),
          npred_engine(seg.index, opts.scoring,
                       NpredOrderingMode::kNecessaryPartialOrders, opts.mode,
                       &runtime),
          comp_engine(seg.index, opts.scoring, &runtime) {
      ppred_engine.set_pair_routing(opts.pair_routing);
      npred_engine.set_pair_routing(opts.pair_routing);
    }

    SegmentRuntime runtime;
    BoolEngine bool_engine;
    PpredEngine ppred_engine;
    NpredEngine npred_engine;
    CompEngine comp_engine;
  };

  /// The engine the classified language class selects in one segment bank.
  const Engine* SelectEngine(const SegmentEngines& se, LanguageClass cls) const;

  /// The ranked (ctx.top_k() > 0) evaluation path: one TopKAccumulator
  /// across all segments, per-segment block-max or full evaluation.
  /// `out` arrives with language_class set and engine defaulted.
  StatusOr<RoutedResult> SearchTopK(const LangExprPtr& query, ExecContext& ctx,
                                    RoutedResult out) const;

  std::shared_ptr<const IndexSnapshot> snapshot_;
  SearcherOptions options_;
  std::vector<std::unique_ptr<SegmentEngines>> segments_;
};

}  // namespace fts

#endif  // FTS_EVAL_SEARCHER_H_
