// Builtin position predicates (paper Sections 2.2, 5.5.1, 5.6.1).
//
// Positive predicates:
//   distance(p1, p2, d)   — at most d intervening tokens between p1 and p2
//                           (order-insensitive): |off1 - off2| <= d + 1.
//   odistance(p1, p2, d)  — p1 before p2 with at most d intervening tokens:
//                           0 < off2 - off1 <= d + 1 (phrase = d 0).
//   ordered(p1, p2)       — p1 occurs before p2.
//   samepara(p1, p2)      — same paragraph.
//   samesentence(p1, p2)  — same sentence.
//   window(p1..pn, w)     — all positions within a span of w tokens
//                           (max offset - min offset <= w); n-ary.
//
// Negative predicates (negations of the above, plus diffpos):
//   not_distance(p1, p2, d), not_ordered(p1, p2), not_samepara(p1, p2),
//   not_samesentence(p1, p2), diffpos(p1, p2).
//
// not_ordered is the complement of ordered over *distinct* positions; on
// aliased positions (same offset) the negative-predicate property of
// Section 5.6.1 would not hold, but distinct tokens never share an offset.

#ifndef FTS_PREDICATES_BUILTIN_H_
#define FTS_PREDICATES_BUILTIN_H_

#include "predicates/predicate.h"

namespace fts {

/// Registers all builtin predicates into `registry`.
void RegisterBuiltinPredicates(PredicateRegistry* registry);

}  // namespace fts

#endif  // FTS_PREDICATES_BUILTIN_H_
