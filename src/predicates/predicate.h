// Position-based predicate framework (paper Sections 2.2, 5.5.2, 5.6.1).
//
// A PositionPredicate evaluates a boolean over m positions and q integer
// constants: pred(p_1..p_m, c_1..c_q). Predicates are classified:
//
//  - kPositive (Definition 1): false tuples admit a contiguous solution-free
//    region described by per-coordinate advance bounds f_i; the PPRED engine
//    uses them to skip the cartesian product in a single scan.
//  - kNegative (Section 5.6.1): false tuples are "bounded"; solutions can
//    only be reached by extending the interval between the smallest and
//    largest positions, so the NPRED engine fixes an ordering and advances
//    the largest cursor.
//  - kGeneral: anything else; such predicates force COMP (materialized)
//    evaluation.
//
// The framework is open: users can register new predicates (the paper's
// model is "extensible with respect to the set of predicates", Section 2.1).

#ifndef FTS_PREDICATES_PREDICATE_H_
#define FTS_PREDICATES_PREDICATE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "text/document.h"

namespace fts {

/// Evaluation class of a predicate; decides which engines can run it.
enum class PredicateClass {
  kPositive,
  kNegative,
  kGeneral,
};

const char* PredicateClassToString(PredicateClass cls);

/// A named boolean predicate over token positions. Implementations are
/// stateless and shared; all methods are const and thread-safe.
class PositionPredicate {
 public:
  virtual ~PositionPredicate() = default;

  /// Canonical lower-case name used in query syntax, e.g. "distance".
  virtual std::string_view name() const = 0;

  /// Number of position arguments; kVariadic for n-ary predicates.
  virtual int arity() const = 0;

  /// Number of integer constants.
  virtual int num_constants() const = 0;

  virtual PredicateClass cls() const = 0;

  /// Truth value on a concrete tuple. `positions.size()` must satisfy the
  /// arity contract and `consts.size() == num_constants()`.
  virtual bool Eval(std::span<const PositionInfo> positions,
                    std::span<const int64_t> consts) const = 0;

  /// Positive predicates only. Given a tuple with Eval(...) == false, fills
  /// `bounds[i]` with the offset lower bound f_i(p_1..p_n) of Definition 1:
  /// every tuple with coordinate i in [p_i, f_i) and the others >= current
  /// also fails. At least one bound is strictly greater than its current
  /// offset. Default implementation aborts (non-positive predicates).
  virtual void AdvanceBounds(std::span<const PositionInfo> positions,
                             std::span<const int64_t> consts,
                             std::span<uint32_t> bounds) const;

  /// Negative predicates only. Given a failing tuple whose largest position
  /// (under the evaluation thread's ordering) is coordinate `largest`,
  /// returns the minimal offset for that coordinate that could satisfy the
  /// predicate with the other coordinates fixed, or kInvalidOffset if no
  /// such offset exists under this ordering. Default aborts.
  virtual uint32_t NegativeAdvanceTarget(std::span<const PositionInfo> positions,
                                         std::span<const int64_t> consts,
                                         size_t largest) const;

  /// Negative predicates only: which argument is "largest" under the
  /// evaluation thread's cursor ordering (Algorithm 7 moves that one). The
  /// default picks the maximal offset, last argument on ties; the NPRED
  /// engine overrides ties with the thread's ordering permutation, which
  /// matters when two variables scan the same token list.
  virtual size_t LargestArgument(std::span<const PositionInfo> positions) const;

  /// Scoring hook for the probabilistic model (paper Section 3.2): a factor
  /// in [0,1] by which a selection scales the tuple score. The default is
  /// 1.0 (no attenuation); distance overrides it with 1 - |p1-p2|/dist.
  virtual double ScoreFactor(std::span<const PositionInfo> positions,
                             std::span<const int64_t> consts) const;

  /// Arity value meaning "any number of position arguments >= 2".
  static constexpr int kVariadic = -1;

  /// Checks an argument list against this predicate's signature.
  Status ValidateSignature(size_t num_positions, size_t num_consts) const;
};

/// Name -> predicate lookup. The default registry contains all builtins
/// (predicates/builtin.h); additional predicates may be registered, which
/// is how the language is extended per Section 2.2.
class PredicateRegistry {
 public:
  /// Registry pre-populated with the builtin predicates.
  static const PredicateRegistry& Default();

  PredicateRegistry();

  /// Registers `pred` under pred->name(); fails on duplicates.
  Status Register(std::shared_ptr<const PositionPredicate> pred);

  /// Looks up a predicate by name; nullptr if unknown.
  const PositionPredicate* Find(std::string_view name) const;

  /// Names of all registered predicates (sorted).
  std::vector<std::string> Names() const;

 private:
  std::unordered_map<std::string, std::shared_ptr<const PositionPredicate>> preds_;
};

}  // namespace fts

#endif  // FTS_PREDICATES_PREDICATE_H_
