#include "predicates/builtin.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace fts {

namespace {

// Convenience: offset of the i-th argument.
uint32_t Off(std::span<const PositionInfo> ps, size_t i) { return ps[i].offset; }

// ---------------------------------------------------------------------------
// Positive predicates.
// ---------------------------------------------------------------------------

/// distance(p1, p2, d): at most d intervening tokens, either order.
class DistancePredicate : public PositionPredicate {
 public:
  std::string_view name() const override { return "distance"; }
  int arity() const override { return 2; }
  int num_constants() const override { return 1; }
  PredicateClass cls() const override { return PredicateClass::kPositive; }

  bool Eval(std::span<const PositionInfo> ps,
            std::span<const int64_t> consts) const override {
    const int64_t diff = std::llabs(static_cast<int64_t>(Off(ps, 0)) -
                                    static_cast<int64_t>(Off(ps, 1)));
    return diff <= consts[0] + 1;
  }

  void AdvanceBounds(std::span<const PositionInfo> ps, std::span<const int64_t> consts,
                     std::span<uint32_t> bounds) const override {
    // False means the gap exceeds d+1; only moving the smaller position up
    // to (larger - (d+1)) can close it. Everything below that bound keeps
    // the gap too wide no matter how the larger position grows.
    const uint32_t span = static_cast<uint32_t>(consts[0] + 1);
    if (Off(ps, 0) < Off(ps, 1)) {
      bounds[0] = Off(ps, 1) - span;
      bounds[1] = Off(ps, 1);
    } else {
      bounds[0] = Off(ps, 0);
      bounds[1] = Off(ps, 0) - span;
    }
  }

  double ScoreFactor(std::span<const PositionInfo> ps,
                     std::span<const int64_t> consts) const override {
    // Paper Section 3.2: f = 1 - |p1 - p2| / dist, clamped to [0, 1].
    if (consts[0] <= 0) return 1.0;
    const double diff = std::abs(static_cast<double>(Off(ps, 0)) -
                                 static_cast<double>(Off(ps, 1)));
    return std::clamp(1.0 - diff / static_cast<double>(consts[0]), 0.0, 1.0);
  }
};

/// odistance(p1, p2, d): p1 strictly before p2 with at most d intervening.
class OrderedDistancePredicate : public PositionPredicate {
 public:
  std::string_view name() const override { return "odistance"; }
  int arity() const override { return 2; }
  int num_constants() const override { return 1; }
  PredicateClass cls() const override { return PredicateClass::kPositive; }

  bool Eval(std::span<const PositionInfo> ps,
            std::span<const int64_t> consts) const override {
    const int64_t diff =
        static_cast<int64_t>(Off(ps, 1)) - static_cast<int64_t>(Off(ps, 0));
    return diff > 0 && diff <= consts[0] + 1;
  }

  void AdvanceBounds(std::span<const PositionInfo> ps, std::span<const int64_t> consts,
                     std::span<uint32_t> bounds) const override {
    const uint32_t span = static_cast<uint32_t>(consts[0] + 1);
    if (Off(ps, 1) <= Off(ps, 0)) {
      // Wrong order: p2 must pass p1.
      bounds[0] = Off(ps, 0);
      bounds[1] = Off(ps, 0) + 1;
    } else {
      // Right order but gap too wide: p1 must catch up to p2 - span.
      bounds[0] = Off(ps, 1) - span;
      bounds[1] = Off(ps, 1);
    }
  }

  double ScoreFactor(std::span<const PositionInfo> ps,
                     std::span<const int64_t> consts) const override {
    if (consts[0] <= 0) return 1.0;
    const double diff = std::abs(static_cast<double>(Off(ps, 0)) -
                                 static_cast<double>(Off(ps, 1)));
    return std::clamp(1.0 - diff / static_cast<double>(consts[0]), 0.0, 1.0);
  }
};

/// ordered(p1, p2): p1 occurs before p2.
class OrderedPredicate : public PositionPredicate {
 public:
  std::string_view name() const override { return "ordered"; }
  int arity() const override { return 2; }
  int num_constants() const override { return 0; }
  PredicateClass cls() const override { return PredicateClass::kPositive; }

  bool Eval(std::span<const PositionInfo> ps, std::span<const int64_t>) const override {
    return Off(ps, 0) < Off(ps, 1);
  }

  void AdvanceBounds(std::span<const PositionInfo> ps, std::span<const int64_t>,
                     std::span<uint32_t> bounds) const override {
    // p2 <= p1: any p2' <= p1 stays unordered relative to any p1' >= p1.
    bounds[0] = Off(ps, 0);
    bounds[1] = Off(ps, 0) + 1;
  }
};

/// samepara(p1, p2): both positions in the same paragraph.
class SameParaPredicate : public PositionPredicate {
 public:
  std::string_view name() const override { return "samepara"; }
  int arity() const override { return 2; }
  int num_constants() const override { return 0; }
  PredicateClass cls() const override { return PredicateClass::kPositive; }

  bool Eval(std::span<const PositionInfo> ps, std::span<const int64_t>) const override {
    return ps[0].paragraph == ps[1].paragraph;
  }

  void AdvanceBounds(std::span<const PositionInfo> ps, std::span<const int64_t>,
                     std::span<uint32_t> bounds) const override {
    // Paragraph ordinals are monotone in offset, so the position in the
    // earlier paragraph can never match anything at or above the other
    // position's paragraph until it advances.
    if (ps[0].paragraph < ps[1].paragraph) {
      bounds[0] = Off(ps, 0) + 1;
      bounds[1] = Off(ps, 1);
    } else {
      bounds[0] = Off(ps, 0);
      bounds[1] = Off(ps, 1) + 1;
    }
  }
};

/// samesentence(p1, p2): both positions in the same sentence.
class SameSentencePredicate : public PositionPredicate {
 public:
  std::string_view name() const override { return "samesentence"; }
  int arity() const override { return 2; }
  int num_constants() const override { return 0; }
  PredicateClass cls() const override { return PredicateClass::kPositive; }

  bool Eval(std::span<const PositionInfo> ps, std::span<const int64_t>) const override {
    return ps[0].sentence == ps[1].sentence;
  }

  void AdvanceBounds(std::span<const PositionInfo> ps, std::span<const int64_t>,
                     std::span<uint32_t> bounds) const override {
    if (ps[0].sentence < ps[1].sentence) {
      bounds[0] = Off(ps, 0) + 1;
      bounds[1] = Off(ps, 1);
    } else {
      bounds[0] = Off(ps, 0);
      bounds[1] = Off(ps, 1) + 1;
    }
  }
};

/// window(p1..pn, w): all n positions within a span of w tokens.
class WindowPredicate : public PositionPredicate {
 public:
  std::string_view name() const override { return "window"; }
  int arity() const override { return kVariadic; }
  int num_constants() const override { return 1; }
  PredicateClass cls() const override { return PredicateClass::kPositive; }

  bool Eval(std::span<const PositionInfo> ps,
            std::span<const int64_t> consts) const override {
    uint32_t lo = ps[0].offset, hi = ps[0].offset;
    for (const PositionInfo& p : ps) {
      lo = std::min(lo, p.offset);
      hi = std::max(hi, p.offset);
    }
    return hi - lo <= consts[0];
  }

  void AdvanceBounds(std::span<const PositionInfo> ps, std::span<const int64_t> consts,
                     std::span<uint32_t> bounds) const override {
    uint32_t lo = ps[0].offset, hi = ps[0].offset;
    size_t lo_idx = 0;
    for (size_t i = 0; i < ps.size(); ++i) {
      if (ps[i].offset < lo) {
        lo = ps[i].offset;
        lo_idx = i;
      }
      hi = std::max(hi, ps[i].offset);
    }
    // The minimum must enter [hi - w, ...]; while it stays below, the span
    // only grows as other positions advance.
    for (size_t i = 0; i < ps.size(); ++i) bounds[i] = ps[i].offset;
    bounds[lo_idx] = hi - static_cast<uint32_t>(consts[0]);
  }
};

/// le(p1, p2): p1 does not occur after p2 (non-strict order). Used by the
/// NPRED engine to pin one ordering of the inverted-list cursors per
/// evaluation thread (Section 5.6.2's ordering permutations).
class LePredicate : public PositionPredicate {
 public:
  std::string_view name() const override { return "le"; }
  int arity() const override { return 2; }
  int num_constants() const override { return 0; }
  PredicateClass cls() const override { return PredicateClass::kPositive; }

  bool Eval(std::span<const PositionInfo> ps, std::span<const int64_t>) const override {
    return Off(ps, 0) <= Off(ps, 1);
  }

  void AdvanceBounds(std::span<const PositionInfo> ps, std::span<const int64_t>,
                     std::span<uint32_t> bounds) const override {
    // p2 < p1: p2 must catch up to p1.
    bounds[0] = Off(ps, 0);
    bounds[1] = Off(ps, 0);
  }
};

/// samepos(p1, p2): the two positions coincide. Used by the FTC->FTA
/// compiler to express natural joins on shared variables (the paper's FTA
/// joins only on CNode, so variable sharing becomes an explicit selection).
class SamePosPredicate : public PositionPredicate {
 public:
  std::string_view name() const override { return "samepos"; }
  int arity() const override { return 2; }
  int num_constants() const override { return 0; }
  PredicateClass cls() const override { return PredicateClass::kPositive; }

  bool Eval(std::span<const PositionInfo> ps, std::span<const int64_t>) const override {
    return Off(ps, 0) == Off(ps, 1);
  }

  void AdvanceBounds(std::span<const PositionInfo> ps, std::span<const int64_t>,
                     std::span<uint32_t> bounds) const override {
    // The smaller position can jump straight to the larger one; everything
    // in between cannot equal any position >= the larger.
    if (Off(ps, 0) < Off(ps, 1)) {
      bounds[0] = Off(ps, 1);
      bounds[1] = Off(ps, 1);
    } else {
      bounds[0] = Off(ps, 0);
      bounds[1] = Off(ps, 0);
    }
  }
};

// ---------------------------------------------------------------------------
// Negative predicates.
// ---------------------------------------------------------------------------

/// diffpos(p1, p2): the two positions differ.
class DiffPosPredicate : public PositionPredicate {
 public:
  std::string_view name() const override { return "diffpos"; }
  int arity() const override { return 2; }
  int num_constants() const override { return 0; }
  PredicateClass cls() const override { return PredicateClass::kNegative; }

  bool Eval(std::span<const PositionInfo> ps, std::span<const int64_t>) const override {
    return Off(ps, 0) != Off(ps, 1);
  }

  uint32_t NegativeAdvanceTarget(std::span<const PositionInfo> ps,
                                 std::span<const int64_t>,
                                 size_t largest) const override {
    // False only when equal; any strictly larger offset for the largest
    // cursor satisfies it.
    return Off(ps, largest) + 1;
  }
};

/// not_distance(p1, p2, d): more than d intervening tokens.
class NotDistancePredicate : public PositionPredicate {
 public:
  std::string_view name() const override { return "not_distance"; }
  int arity() const override { return 2; }
  int num_constants() const override { return 1; }
  PredicateClass cls() const override { return PredicateClass::kNegative; }

  bool Eval(std::span<const PositionInfo> ps,
            std::span<const int64_t> consts) const override {
    const int64_t diff = std::llabs(static_cast<int64_t>(Off(ps, 0)) -
                                    static_cast<int64_t>(Off(ps, 1)));
    return diff > consts[0] + 1;
  }

  uint32_t NegativeAdvanceTarget(std::span<const PositionInfo> ps,
                                 std::span<const int64_t> consts,
                                 size_t largest) const override {
    // Satisfied once the largest position clears smaller + d + 2.
    const size_t other = 1 - largest;
    return Off(ps, other) + static_cast<uint32_t>(consts[0]) + 2;
  }
};

/// not_ordered(p1, p2): p1 does not occur before p2.
class NotOrderedPredicate : public PositionPredicate {
 public:
  std::string_view name() const override { return "not_ordered"; }
  int arity() const override { return 2; }
  int num_constants() const override { return 0; }
  PredicateClass cls() const override { return PredicateClass::kNegative; }

  bool Eval(std::span<const PositionInfo> ps, std::span<const int64_t>) const override {
    return Off(ps, 0) >= Off(ps, 1);
  }

  uint32_t NegativeAdvanceTarget(std::span<const PositionInfo> ps,
                                 std::span<const int64_t>,
                                 size_t largest) const override {
    // Only p1 growing past p2 can satisfy it; if p2 is the cursor we are
    // allowed to move, this evaluation thread cannot produce solutions.
    if (largest == 0) return Off(ps, 1);
    return kInvalidOffset;
  }
};

/// not_samepara(p1, p2): positions in different paragraphs.
class NotSameParaPredicate : public PositionPredicate {
 public:
  std::string_view name() const override { return "not_samepara"; }
  int arity() const override { return 2; }
  int num_constants() const override { return 0; }
  PredicateClass cls() const override { return PredicateClass::kNegative; }

  bool Eval(std::span<const PositionInfo> ps, std::span<const int64_t>) const override {
    return ps[0].paragraph != ps[1].paragraph;
  }

  uint32_t NegativeAdvanceTarget(std::span<const PositionInfo> ps,
                                 std::span<const int64_t>,
                                 size_t largest) const override {
    // The largest cursor must leave the shared paragraph; paragraph breaks
    // are not knowable from offsets alone, so advance one token at a time
    // (each posting is still visited at most once per thread).
    return Off(ps, largest) + 1;
  }
};

/// not_samesentence(p1, p2): positions in different sentences.
class NotSameSentencePredicate : public PositionPredicate {
 public:
  std::string_view name() const override { return "not_samesentence"; }
  int arity() const override { return 2; }
  int num_constants() const override { return 0; }
  PredicateClass cls() const override { return PredicateClass::kNegative; }

  bool Eval(std::span<const PositionInfo> ps, std::span<const int64_t>) const override {
    return ps[0].sentence != ps[1].sentence;
  }

  uint32_t NegativeAdvanceTarget(std::span<const PositionInfo> ps,
                                 std::span<const int64_t>,
                                 size_t largest) const override {
    return Off(ps, largest) + 1;
  }
};

}  // namespace

void RegisterBuiltinPredicates(PredicateRegistry* registry) {
  auto add = [registry](std::shared_ptr<const PositionPredicate> p) {
    Status s = registry->Register(std::move(p));
    (void)s;  // duplicates impossible for builtins
  };
  add(std::make_shared<DistancePredicate>());
  add(std::make_shared<OrderedDistancePredicate>());
  add(std::make_shared<OrderedPredicate>());
  add(std::make_shared<SameParaPredicate>());
  add(std::make_shared<SameSentencePredicate>());
  add(std::make_shared<WindowPredicate>());
  add(std::make_shared<LePredicate>());
  add(std::make_shared<SamePosPredicate>());
  add(std::make_shared<DiffPosPredicate>());
  add(std::make_shared<NotDistancePredicate>());
  add(std::make_shared<NotOrderedPredicate>());
  add(std::make_shared<NotSameParaPredicate>());
  add(std::make_shared<NotSameSentencePredicate>());
}

}  // namespace fts
