#include "predicates/predicate.h"

#include <algorithm>
#include <cstdlib>

#include "predicates/builtin.h"

namespace fts {

const char* PredicateClassToString(PredicateClass cls) {
  switch (cls) {
    case PredicateClass::kPositive:
      return "positive";
    case PredicateClass::kNegative:
      return "negative";
    case PredicateClass::kGeneral:
      return "general";
  }
  return "unknown";
}

void PositionPredicate::AdvanceBounds(std::span<const PositionInfo>,
                                      std::span<const int64_t>,
                                      std::span<uint32_t>) const {
  // Only positive predicates participate in PPRED evaluation; reaching this
  // default means an engine routed a non-positive predicate incorrectly.
  std::abort();
}

uint32_t PositionPredicate::NegativeAdvanceTarget(std::span<const PositionInfo>,
                                                  std::span<const int64_t>,
                                                  size_t) const {
  std::abort();
}

size_t PositionPredicate::LargestArgument(
    std::span<const PositionInfo> positions) const {
  size_t mx = 0;
  for (size_t i = 1; i < positions.size(); ++i) {
    if (positions[i].offset >= positions[mx].offset) mx = i;
  }
  return mx;
}

double PositionPredicate::ScoreFactor(std::span<const PositionInfo>,
                                      std::span<const int64_t>) const {
  return 1.0;
}

Status PositionPredicate::ValidateSignature(size_t num_positions,
                                            size_t num_consts) const {
  if (arity() == kVariadic) {
    if (num_positions < 2) {
      return Status::InvalidArgument(std::string(name()) +
                                     " requires at least 2 position arguments");
    }
  } else if (num_positions != static_cast<size_t>(arity())) {
    return Status::InvalidArgument(std::string(name()) + " expects " +
                                   std::to_string(arity()) + " positions, got " +
                                   std::to_string(num_positions));
  }
  if (num_consts != static_cast<size_t>(num_constants())) {
    return Status::InvalidArgument(std::string(name()) + " expects " +
                                   std::to_string(num_constants()) +
                                   " constants, got " + std::to_string(num_consts));
  }
  return Status::OK();
}

PredicateRegistry::PredicateRegistry() = default;

const PredicateRegistry& PredicateRegistry::Default() {
  static const PredicateRegistry* registry = [] {
    auto* r = new PredicateRegistry();
    RegisterBuiltinPredicates(r);
    return r;
  }();
  return *registry;
}

Status PredicateRegistry::Register(std::shared_ptr<const PositionPredicate> pred) {
  std::string name(pred->name());
  auto [it, inserted] = preds_.emplace(std::move(name), std::move(pred));
  if (!inserted) {
    return Status::InvalidArgument("predicate already registered: " + it->first);
  }
  return Status::OK();
}

const PositionPredicate* PredicateRegistry::Find(std::string_view name) const {
  auto it = preds_.find(std::string(name));
  return it == preds_.end() ? nullptr : it->second.get();
}

std::vector<std::string> PredicateRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(preds_.size());
  for (const auto& [name, pred] : preds_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace fts
