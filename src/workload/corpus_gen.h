// Synthetic corpus generation for tests and benchmarks.
//
// The paper evaluates on INEX 2003 (~12k IEEE articles), which is not
// redistributable; this generator produces corpora with the same *shape*
// parameters the evaluation algorithms' costs depend on (Section 5.1.2):
// number of context nodes, positions per node, inverted-list entry counts
// (via Zipfian token frequencies), and positions per entry (via dedicated
// dense "topic" tokens whose per-document occurrence count is controlled).
// Everything is seeded and deterministic.

#ifndef FTS_WORKLOAD_CORPUS_GEN_H_
#define FTS_WORKLOAD_CORPUS_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "text/corpus.h"

namespace fts {

/// Parameters of a synthetic corpus.
struct CorpusGenOptions {
  uint64_t seed = 42;
  /// Number of context nodes (paper default: 6000).
  uint32_t num_nodes = 6000;
  /// Tokens per node are drawn uniformly from [min_doc_len, max_doc_len].
  uint32_t min_doc_len = 50;
  uint32_t max_doc_len = 300;
  /// Background vocabulary size (Zipf-distributed).
  uint32_t vocabulary = 20000;
  /// Zipf skew (1.0 ~ natural language).
  double zipf_skew = 1.0;
  /// Average sentence length in tokens.
  uint32_t sentence_len = 12;
  /// Average sentences per paragraph.
  uint32_t sentences_per_para = 5;
  /// Dedicated query tokens ("topic0", "topic1", ...) planted in a fraction
  /// of documents with a controlled number of occurrences each; benches
  /// query these so that entries_per_token and pos_per_entry are known.
  uint32_t num_topic_tokens = 8;
  /// Fraction of documents containing each topic token.
  double topic_doc_fraction = 0.5;
  /// Occurrences of a topic token within a containing document.
  uint32_t topic_occurrences = 25;
};

/// Generates the corpus described by `options`. Topic token t's spelling is
/// TopicToken(t).
Corpus GenerateCorpus(const CorpusGenOptions& options);

/// Spelling of the i-th planted topic token ("topic<i>").
std::string TopicToken(uint32_t i);

/// Spelling of the i-th background token ("w<i>").
std::string BackgroundToken(uint32_t i);

}  // namespace fts

#endif  // FTS_WORKLOAD_CORPUS_GEN_H_
