// Synthetic query workloads mirroring the paper's experiment parameters
// (Section 6.2): queries with tok_Q tokens and pred_Q predicates, in
// positive-predicate, negative-predicate, and predicate-free variants, over
// the planted topic tokens of a generated corpus.

#ifndef FTS_WORKLOAD_QUERY_GEN_H_
#define FTS_WORKLOAD_QUERY_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fts {

/// Predicate polarity of a generated query.
enum class QueryPolarity {
  kNone,      ///< Boolean conjunction only
  kPositive,  ///< distance / ordered / samepara predicates
  kNegative,  ///< not_distance / not_ordered / not_samepara predicates
};

/// Workload parameters (defaults are the paper's: 3 tokens, 2 predicates).
struct QueryGenOptions {
  uint32_t num_tokens = 3;
  uint32_t num_predicates = 2;
  QueryPolarity polarity = QueryPolarity::kPositive;
  /// Distance bound used by (not_)distance predicates.
  int64_t distance = 20;
  /// Index of the first topic token to use (tokens are topic<first>,
  /// topic<first+1>, ...).
  uint32_t first_topic = 0;
};

/// Builds a COMP-syntax query string:
///   SOME p0 ... SOME pk-1 (p0 HAS 'topic0' AND ... AND pred(...) ...)
/// Predicates cycle over variable pairs (p0,p1), (p1,p2), ... For
/// kNone polarity the query is a plain conjunction of quoted tokens
/// (BOOL-compatible).
std::string GenerateQuery(const QueryGenOptions& options);

/// The distinct token spellings used by GenerateQuery with these options.
std::vector<std::string> QueryTokens(const QueryGenOptions& options);

}  // namespace fts

#endif  // FTS_WORKLOAD_QUERY_GEN_H_
