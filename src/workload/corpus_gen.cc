#include "workload/corpus_gen.h"

#include <algorithm>

#include "common/rng.h"

namespace fts {

std::string TopicToken(uint32_t i) { return "topic" + std::to_string(i); }

std::string BackgroundToken(uint32_t i) { return "w" + std::to_string(i); }

Corpus GenerateCorpus(const CorpusGenOptions& options) {
  Corpus corpus;
  Rng rng(options.seed);
  ZipfSampler zipf(options.vocabulary, options.zipf_skew);

  std::vector<std::string> tokens;
  std::vector<PositionInfo> positions;
  for (uint32_t d = 0; d < options.num_nodes; ++d) {
    const uint32_t len = static_cast<uint32_t>(
        rng.UniformRange(options.min_doc_len, options.max_doc_len));
    tokens.clear();
    positions.clear();
    tokens.reserve(len);

    // Background text.
    for (uint32_t i = 0; i < len; ++i) {
      tokens.push_back(BackgroundToken(static_cast<uint32_t>(zipf.Sample(&rng))));
    }

    // Plant topic tokens at uniform random slots.
    for (uint32_t t = 0; t < options.num_topic_tokens; ++t) {
      if (!rng.Bernoulli(options.topic_doc_fraction)) continue;
      for (uint32_t k = 0; k < options.topic_occurrences; ++k) {
        const size_t slot = static_cast<size_t>(rng.Uniform(tokens.size()));
        tokens[slot] = TopicToken(t);
      }
    }

    // Assign sentence/paragraph structure.
    positions.reserve(tokens.size());
    uint32_t sentence = 0, paragraph = 0, in_sentence = 0, in_para = 0;
    for (uint32_t i = 0; i < tokens.size(); ++i) {
      positions.push_back(PositionInfo{i, sentence, paragraph});
      if (++in_sentence >= options.sentence_len) {
        in_sentence = 0;
        ++sentence;
        if (++in_para >= options.sentences_per_para) {
          in_para = 0;
          ++paragraph;
        }
      }
    }

    auto added = corpus.AddTokensWithPositions(tokens, positions);
    (void)added;  // offsets are consecutive by construction; cannot fail
  }
  return corpus;
}

}  // namespace fts
