#include "workload/query_gen.h"

#include "workload/corpus_gen.h"

namespace fts {

std::vector<std::string> QueryTokens(const QueryGenOptions& options) {
  std::vector<std::string> out;
  out.reserve(options.num_tokens);
  for (uint32_t i = 0; i < options.num_tokens; ++i) {
    out.push_back(TopicToken(options.first_topic + i));
  }
  return out;
}

std::string GenerateQuery(const QueryGenOptions& options) {
  const std::vector<std::string> tokens = QueryTokens(options);

  if (options.polarity == QueryPolarity::kNone || options.num_predicates == 0 ||
      options.num_tokens < 2) {
    // Plain Boolean conjunction.
    std::string q;
    for (size_t i = 0; i < tokens.size(); ++i) {
      if (i > 0) q += " AND ";
      q += "'" + tokens[i] + "'";
    }
    return q;
  }

  // SOME p0 ... (p0 HAS 't0' AND ... AND pred(p0,p1) AND pred(p1,p2) ...)
  std::string q;
  for (uint32_t i = 0; i < options.num_tokens; ++i) {
    q += "SOME p" + std::to_string(i) + " ";
  }
  q += "(";
  for (uint32_t i = 0; i < options.num_tokens; ++i) {
    if (i > 0) q += " AND ";
    q += "p" + std::to_string(i) + " HAS '" + tokens[i] + "'";
  }
  // Predicates cycle over adjacent variable pairs and over three predicate
  // families so multi-predicate queries exercise a mix, as in Section 6.
  static const char* kPositive[] = {"distance", "ordered", "samepara"};
  static const char* kNegative[] = {"not_distance", "not_ordered", "not_samepara"};
  const bool negative = options.polarity == QueryPolarity::kNegative;
  for (uint32_t p = 0; p < options.num_predicates; ++p) {
    const uint32_t a = p % (options.num_tokens - 1);
    const uint32_t b = a + 1;
    const char* name = negative ? kNegative[p % 3] : kPositive[p % 3];
    q += " AND ";
    q += name;
    q += "(p" + std::to_string(a) + ", p" + std::to_string(b);
    const bool is_distance = (p % 3) == 0;
    if (is_distance) q += ", " + std::to_string(options.distance);
    q += ")";
  }
  q += ")";
  return q;
}

}  // namespace fts
