#include "algebra/fta.h"

#include <algorithm>

#include "index/block_posting_list.h"
#include "index/decoded_block_cache.h"

namespace fts {

// FtaExpr has a private constructor; the member factories below are the
// only allocation points.

FtaExprPtr FtaExpr::SearchContext() {
  auto e = std::shared_ptr<FtaExpr>(new FtaExpr());
  e->kind_ = Kind::kSearchContext;
  e->num_cols_ = 0;
  return e;
}

FtaExprPtr FtaExpr::HasPos() {
  auto e = std::shared_ptr<FtaExpr>(new FtaExpr());
  e->kind_ = Kind::kHasPos;
  e->num_cols_ = 1;
  return e;
}

FtaExprPtr FtaExpr::Token(std::string token) {
  auto e = std::shared_ptr<FtaExpr>(new FtaExpr());
  e->kind_ = Kind::kToken;
  e->num_cols_ = 1;
  e->token_ = std::move(token);
  return e;
}

StatusOr<FtaExprPtr> FtaExpr::Project(FtaExprPtr in, std::vector<int> cols) {
  for (int c : cols) {
    if (c < 0 || static_cast<size_t>(c) >= in->num_cols()) {
      return Status::InvalidArgument("project column " + std::to_string(c) +
                                     " out of range (input has " +
                                     std::to_string(in->num_cols()) + ")");
    }
  }
  auto e = std::shared_ptr<FtaExpr>(new FtaExpr());
  e->kind_ = Kind::kProject;
  e->num_cols_ = cols.size();
  e->project_cols_ = std::move(cols);
  e->left_ = std::move(in);
  return FtaExprPtr(e);
}

FtaExprPtr FtaExpr::Join(FtaExprPtr l, FtaExprPtr r) {
  auto e = std::shared_ptr<FtaExpr>(new FtaExpr());
  e->kind_ = Kind::kJoin;
  e->num_cols_ = l->num_cols() + r->num_cols();
  e->left_ = std::move(l);
  e->right_ = std::move(r);
  return e;
}

StatusOr<FtaExprPtr> FtaExpr::AntiJoin(FtaExprPtr l, FtaExprPtr r) {
  if (r->num_cols() != 0) {
    return Status::InvalidArgument("anti-join right side must have zero columns");
  }
  auto e = std::shared_ptr<FtaExpr>(new FtaExpr());
  e->kind_ = Kind::kAntiJoin;
  e->num_cols_ = l->num_cols();
  e->left_ = std::move(l);
  e->right_ = std::move(r);
  return FtaExprPtr(e);
}

StatusOr<FtaExprPtr> FtaExpr::Select(FtaExprPtr in, AlgebraPredicateCall call) {
  if (call.pred == nullptr) return Status::InvalidArgument("select with null predicate");
  FTS_RETURN_IF_ERROR(call.pred->ValidateSignature(call.cols.size(), call.consts.size()));
  for (int c : call.cols) {
    if (c < 0 || static_cast<size_t>(c) >= in->num_cols()) {
      return Status::InvalidArgument("select column " + std::to_string(c) +
                                     " out of range");
    }
  }
  auto e = std::shared_ptr<FtaExpr>(new FtaExpr());
  e->kind_ = Kind::kSelect;
  e->num_cols_ = in->num_cols();
  e->pred_ = std::move(call);
  e->left_ = std::move(in);
  return FtaExprPtr(e);
}

StatusOr<FtaExprPtr> FtaExpr::Union(FtaExprPtr l, FtaExprPtr r) {
  if (l->num_cols() != r->num_cols()) {
    return Status::InvalidArgument("union schema mismatch");
  }
  auto e = std::shared_ptr<FtaExpr>(new FtaExpr());
  e->kind_ = Kind::kUnion;
  e->num_cols_ = l->num_cols();
  e->left_ = std::move(l);
  e->right_ = std::move(r);
  return FtaExprPtr(e);
}

StatusOr<FtaExprPtr> FtaExpr::Intersect(FtaExprPtr l, FtaExprPtr r) {
  if (l->num_cols() != r->num_cols()) {
    return Status::InvalidArgument("intersect schema mismatch");
  }
  auto e = std::shared_ptr<FtaExpr>(new FtaExpr());
  e->kind_ = Kind::kIntersect;
  e->num_cols_ = l->num_cols();
  e->left_ = std::move(l);
  e->right_ = std::move(r);
  return FtaExprPtr(e);
}

StatusOr<FtaExprPtr> FtaExpr::Difference(FtaExprPtr l, FtaExprPtr r) {
  if (l->num_cols() != r->num_cols()) {
    return Status::InvalidArgument("difference schema mismatch");
  }
  auto e = std::shared_ptr<FtaExpr>(new FtaExpr());
  e->kind_ = Kind::kDifference;
  e->num_cols_ = l->num_cols();
  e->left_ = std::move(l);
  e->right_ = std::move(r);
  return FtaExprPtr(e);
}

std::string FtaExpr::ToString() const {
  switch (kind_) {
    case Kind::kSearchContext:
      return "searchcontext";
    case Kind::kHasPos:
      return "haspos";
    case Kind::kToken:
      return "scan('" + token_ + "')";
    case Kind::kProject: {
      std::string out = "project[";
      for (size_t i = 0; i < project_cols_.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(project_cols_[i]);
      }
      return out + "](" + left_->ToString() + ")";
    }
    case Kind::kJoin:
      return "join(" + left_->ToString() + "," + right_->ToString() + ")";
    case Kind::kAntiJoin:
      return "antijoin(" + left_->ToString() + "," + right_->ToString() + ")";
    case Kind::kSelect: {
      std::string out = "select[";
      out += pred_.pred->name();
      out += "(";
      for (size_t i = 0; i < pred_.cols.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(pred_.cols[i]);
      }
      for (int64_t c : pred_.consts) out += ";" + std::to_string(c);
      return out + ")](" + left_->ToString() + ")";
    }
    case Kind::kUnion:
      return "union(" + left_->ToString() + "," + right_->ToString() + ")";
    case Kind::kIntersect:
      return "intersect(" + left_->ToString() + "," + right_->ToString() + ")";
    case Kind::kDifference:
      return "difference(" + left_->ToString() + "," + right_->ToString() + ")";
  }
  return "?";
}

void ForEachScanLeaf(const FtaExprPtr& plan,
                     const std::function<void(const FtaExpr&)>& fn) {
  if (!plan) return;
  if (plan->kind() == FtaExpr::Kind::kToken ||
      plan->kind() == FtaExpr::Kind::kHasPos) {
    fn(*plan);
    return;
  }
  // child() aliases left(), so left+right covers unary nodes too.
  ForEachScanLeaf(plan->left(), fn);
  ForEachScanLeaf(plan->right(), fn);
}

namespace {

void CollectScanLeaves(const FtaExprPtr& plan, std::vector<std::string>* tokens,
                       int* haspos_scans) {
  ForEachScanLeaf(plan, [&](const FtaExpr& leaf) {
    if (leaf.kind() == FtaExpr::Kind::kToken) {
      tokens->push_back(leaf.token());
    } else {
      ++*haspos_scans;
    }
  });
}

}  // namespace

bool ShouldUseDecodedBlockCache(const FtaExprPtr& plan, const InvertedIndex& index) {
  std::vector<std::string> tokens;
  int haspos_scans = 0;
  CollectScanLeaves(plan, &tokens, &haspos_scans);
  return DecodedBlockCache::ShouldAttach(index, std::move(tokens), haspos_scans);
}

bool PlanFitsDecodedBlockCache(const FtaExprPtr& plan, const InvertedIndex& index) {
  std::vector<std::string> tokens;
  int haspos_scans = 0;
  CollectScanLeaves(plan, &tokens, &haspos_scans);
  return DecodedBlockCache::FitsWorkingSet(index, tokens, haspos_scans);
}

StatusOr<FtRelation> EvaluateFta(const FtaExprPtr& expr, const InvertedIndex& index,
                                 const AlgebraScoreModel* model,
                                 EvalCounters* counters,
                                 const RawPostingOracle* raw_oracle,
                                 DecodedBlockCache* cache,
                                 const Deadline* deadline,
                                 const TombstoneSet* tombstones) {
  if (!expr) return Status::InvalidArgument("null algebra expression");
  // One check per operator application: COMP's intermediates are the
  // expensive part, so expiry stops before the next one materializes.
  if (deadline != nullptr && deadline->Expired()) {
    return Status::DeadlineExceeded("query deadline expired (COMP)");
  }
  switch (expr->kind()) {
    case FtaExpr::Kind::kSearchContext:
      return OpScanSearchContext(index, model, counters, tombstones);
    case FtaExpr::Kind::kHasPos:
      return OpScanHasPos(index, model, counters, raw_oracle, cache,
                          tombstones);
    case FtaExpr::Kind::kToken:
      return OpScanToken(index, expr->token(), model, counters, raw_oracle,
                         cache, tombstones);
    case FtaExpr::Kind::kProject: {
      FTS_ASSIGN_OR_RETURN(FtRelation in,
                           EvaluateFta(expr->child(), index, model, counters,
                                       raw_oracle, cache, deadline, tombstones));
      return OpProject(in, expr->project_cols(), model, counters);
    }
    case FtaExpr::Kind::kJoin: {
      FTS_ASSIGN_OR_RETURN(FtRelation l,
                           EvaluateFta(expr->left(), index, model, counters,
                                       raw_oracle, cache, deadline, tombstones));
      FTS_ASSIGN_OR_RETURN(FtRelation r,
                           EvaluateFta(expr->right(), index, model, counters,
                                       raw_oracle, cache, deadline, tombstones));
      return OpJoin(l, r, model, counters);
    }
    case FtaExpr::Kind::kSelect: {
      FTS_ASSIGN_OR_RETURN(FtRelation in,
                           EvaluateFta(expr->child(), index, model, counters,
                                       raw_oracle, cache, deadline, tombstones));
      return OpSelect(in, expr->pred(), model, counters);
    }
    case FtaExpr::Kind::kAntiJoin: {
      FTS_ASSIGN_OR_RETURN(FtRelation l,
                           EvaluateFta(expr->left(), index, model, counters,
                                       raw_oracle, cache, deadline, tombstones));
      FTS_ASSIGN_OR_RETURN(FtRelation r,
                           EvaluateFta(expr->right(), index, model, counters,
                                       raw_oracle, cache, deadline, tombstones));
      return OpAntiJoin(l, r, model, counters);
    }
    case FtaExpr::Kind::kUnion: {
      FTS_ASSIGN_OR_RETURN(FtRelation l,
                           EvaluateFta(expr->left(), index, model, counters,
                                       raw_oracle, cache, deadline, tombstones));
      FTS_ASSIGN_OR_RETURN(FtRelation r,
                           EvaluateFta(expr->right(), index, model, counters,
                                       raw_oracle, cache, deadline, tombstones));
      return OpUnion(l, r, model, counters);
    }
    case FtaExpr::Kind::kIntersect: {
      FTS_ASSIGN_OR_RETURN(FtRelation l,
                           EvaluateFta(expr->left(), index, model, counters,
                                       raw_oracle, cache, deadline, tombstones));
      FTS_ASSIGN_OR_RETURN(FtRelation r,
                           EvaluateFta(expr->right(), index, model, counters,
                                       raw_oracle, cache, deadline, tombstones));
      return OpIntersect(l, r, model, counters);
    }
    case FtaExpr::Kind::kDifference: {
      FTS_ASSIGN_OR_RETURN(FtRelation l,
                           EvaluateFta(expr->left(), index, model, counters,
                                       raw_oracle, cache, deadline, tombstones));
      FTS_ASSIGN_OR_RETURN(FtRelation r,
                           EvaluateFta(expr->right(), index, model, counters,
                                       raw_oracle, cache, deadline, tombstones));
      return OpDifference(l, r, model, counters);
    }
  }
  return Status::Internal("unreachable algebra kind");
}

}  // namespace fts
