// Full-text algebra expression trees (paper Section 2.3.1) and their
// materialized evaluator — the query-plan representation shared by the COMP
// engine (which evaluates it bottom-up, Section 5.4) and the pipelined
// PPRED/NPRED engines (which walk the same tree with cursors instead of
// materialized relations; eval/pos_cursor.h).

#ifndef FTS_ALGEBRA_FTA_H_
#define FTS_ALGEBRA_FTA_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algebra/ops.h"
#include "algebra/relation.h"
#include "common/metrics.h"
#include "common/status.h"
#include "exec/exec_context.h"
#include "index/inverted_index.h"
#include "scoring/score_model.h"

namespace fts {

class FtaExpr;
using FtaExprPtr = std::shared_ptr<const FtaExpr>;

/// Immutable algebra expression node.
class FtaExpr {
 public:
  enum class Kind {
    kSearchContext,  ///< all context nodes, 0 position columns
    kHasPos,         ///< all (node, position) pairs, 1 column
    kToken,          ///< R_token, 1 column
    kProject,        ///< π_{CNode, cols...}
    kJoin,           ///< equi-join on CNode, columns concatenated
    kSelect,         ///< σ_pred(cols, consts)
    kAntiJoin,       ///< node-level difference (right side has 0 columns)
    kUnion,
    kIntersect,
    kDifference,
  };

  Kind kind() const { return kind_; }
  size_t num_cols() const { return num_cols_; }
  const std::string& token() const { return token_; }
  const std::vector<int>& project_cols() const { return project_cols_; }
  const AlgebraPredicateCall& pred() const { return pred_; }
  const FtaExprPtr& child() const { return left_; }
  const FtaExprPtr& left() const { return left_; }
  const FtaExprPtr& right() const { return right_; }

  /// Single-line plan rendering, e.g. "project[0](select[distance(0,1,5)]
  /// (join(scan('a'),scan('b'))))".
  std::string ToString() const;

  // Factories. Schema errors (bad columns, mismatched set-op schemas) are
  // reported eagerly.
  static FtaExprPtr SearchContext();
  static FtaExprPtr HasPos();
  static FtaExprPtr Token(std::string token);
  static StatusOr<FtaExprPtr> Project(FtaExprPtr in, std::vector<int> cols);
  static FtaExprPtr Join(FtaExprPtr l, FtaExprPtr r);
  static StatusOr<FtaExprPtr> AntiJoin(FtaExprPtr l, FtaExprPtr r);
  static StatusOr<FtaExprPtr> Select(FtaExprPtr in, AlgebraPredicateCall call);
  static StatusOr<FtaExprPtr> Union(FtaExprPtr l, FtaExprPtr r);
  static StatusOr<FtaExprPtr> Intersect(FtaExprPtr l, FtaExprPtr r);
  static StatusOr<FtaExprPtr> Difference(FtaExprPtr l, FtaExprPtr r);

 private:
  FtaExpr() = default;

  Kind kind_;
  size_t num_cols_ = 0;
  std::string token_;
  std::vector<int> project_cols_;
  AlgebraPredicateCall pred_;
  FtaExprPtr left_, right_;
};

/// Invokes `fn` on every scan leaf of `plan` (kToken and kHasPos nodes),
/// left to right. The single leaf walker shared by the cache-attachment
/// heuristic below and the pipelined planner's df collection, so the two
/// can never diverge on what counts as a leaf.
void ForEachScanLeaf(const FtaExprPtr& plan,
                     const std::function<void(const FtaExpr&)>& fn);

/// True when attaching a per-query DecodedBlockCache pays for one pass of
/// `plan`: some leaf list is scanned twice (a token appearing twice, or
/// HasPos/IL_ANY more than once) and the distinct lists' combined block
/// count fits the cache (DecodedBlockCache::ShouldAttach — the shared
/// decision every engine routes through). Single-scan plans and plans
/// whose working set would thrash the LRU skip the cache.
bool ShouldUseDecodedBlockCache(const FtaExprPtr& plan, const InvertedIndex& index);

/// The FitsWorkingSet half of the decision alone: `plan`'s distinct leaf
/// lists fit the default cache capacity. Used by NPRED's ordering loop,
/// where re-scanning is guaranteed by the loop itself rather than by a
/// repeated leaf.
bool PlanFitsDecodedBlockCache(const FtaExprPtr& plan, const InvertedIndex& index);

/// Bottom-up materialized evaluation (the COMP strategy, Section 5.4).
/// `model` (nullable) supplies the Section 3 score transformations;
/// `counters` (nullable) accumulates list and tuple traffic. `raw_oracle`
/// (nullable, differential tests only) makes the leaf scans read the raw
/// oracle lists instead of the block-resident ones. `cache` (nullable) is
/// shared by every leaf scan of the evaluation, so a token occurring more
/// than once in the plan bulk-decodes its blocks once. `deadline`
/// (nullable) is checked once per operator application: materialized
/// evaluation is the one strategy whose intermediates can explode (the
/// per-node cartesian products), so an expired query stops at the next
/// operator instead of materializing another relation. `tombstones`
/// (nullable) filters deleted nodes out of every leaf scan — including the
/// SearchContext universe — when `index` is one segment of a snapshot.
StatusOr<FtRelation> EvaluateFta(const FtaExprPtr& expr, const InvertedIndex& index,
                                 const AlgebraScoreModel* model,
                                 EvalCounters* counters,
                                 const RawPostingOracle* raw_oracle = nullptr,
                                 DecodedBlockCache* cache = nullptr,
                                 const Deadline* deadline = nullptr,
                                 const TombstoneSet* tombstones = nullptr);

}  // namespace fts

#endif  // FTS_ALGEBRA_FTA_H_
