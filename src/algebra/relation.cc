#include "algebra/relation.h"

#include <algorithm>
#include <cassert>

namespace fts {

bool TupleLess(const FtTuple& a, const FtTuple& b) {
  if (a.node != b.node) return a.node < b.node;
  const size_t n = std::min(a.positions.size(), b.positions.size());
  for (size_t i = 0; i < n; ++i) {
    if (a.positions[i].offset != b.positions[i].offset) {
      return a.positions[i].offset < b.positions[i].offset;
    }
  }
  return a.positions.size() < b.positions.size();
}

bool TupleEq(const FtTuple& a, const FtTuple& b) {
  if (a.node != b.node || a.positions.size() != b.positions.size()) return false;
  for (size_t i = 0; i < a.positions.size(); ++i) {
    if (a.positions[i].offset != b.positions[i].offset) return false;
  }
  return true;
}

void FtRelation::Add(FtTuple t) {
  assert(t.positions.size() == num_cols_);
  tuples_.push_back(std::move(t));
}

void FtRelation::Normalize(double (*combine)(void*, double, double), void* ctx) {
  std::stable_sort(tuples_.begin(), tuples_.end(), TupleLess);
  std::vector<FtTuple> out;
  out.reserve(tuples_.size());
  for (FtTuple& t : tuples_) {
    if (!out.empty() && TupleEq(out.back(), t)) {
      if (combine != nullptr) {
        out.back().score = combine(ctx, out.back().score, t.score);
      }
    } else {
      out.push_back(std::move(t));
    }
  }
  tuples_ = std::move(out);
}

std::vector<NodeId> FtRelation::Nodes() const {
  std::vector<NodeId> nodes;
  for (const FtTuple& t : tuples_) {
    if (nodes.empty() || nodes.back() != t.node) nodes.push_back(t.node);
  }
  return nodes;
}

std::string FtRelation::ToString() const {
  std::string out = "{";
  for (const FtTuple& t : tuples_) {
    out += "(" + std::to_string(t.node);
    if (!t.positions.empty()) out += ";";
    for (size_t i = 0; i < t.positions.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(t.positions[i].offset);
    }
    out += ")";
  }
  out += "}";
  return out;
}

}  // namespace fts
