// Full-text relations (paper Section 2.3): R[CNode, att1..attm] where every
// att is a position within the tuple's CNode. FtRelation is the materialized
// representation used by the COMP engine; tuples are kept sorted by
// (node, position offsets) with set semantics (no duplicates).

#ifndef FTS_ALGEBRA_RELATION_H_
#define FTS_ALGEBRA_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "text/document.h"

namespace fts {

/// One tuple of a full-text relation: a context node, m positions within
/// it, and a score (paper Section 3's per-tuple scoring information).
struct FtTuple {
  NodeId node = kInvalidNode;
  std::vector<PositionInfo> positions;
  double score = 0.0;
};

/// Lexicographic tuple order on (node, offsets...); scores do not
/// participate in identity.
bool TupleLess(const FtTuple& a, const FtTuple& b);

/// True when node and all position offsets coincide.
bool TupleEq(const FtTuple& a, const FtTuple& b);

/// A materialized full-text relation with a fixed number of position
/// columns. Invariant after Normalize(): tuples sorted, no duplicates.
class FtRelation {
 public:
  explicit FtRelation(size_t num_cols = 0) : num_cols_(num_cols) {}

  size_t num_cols() const { return num_cols_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  const FtTuple& tuple(size_t i) const { return tuples_[i]; }
  const std::vector<FtTuple>& tuples() const { return tuples_; }

  /// Appends a tuple (positions.size() must equal num_cols()).
  void Add(FtTuple t);

  /// Sorts and deduplicates. Duplicate scores are folded with `combine`
  /// (e.g. the score model's ProjectCombine); null keeps the first score.
  void Normalize(double (*combine)(void*, double, double) = nullptr,
                 void* ctx = nullptr);

  /// The distinct node ids of this relation (sorted). For single-column
  /// CNode relations this is the query answer.
  std::vector<NodeId> Nodes() const;

  /// Diagnostic rendering, e.g. "{(3;5,9)(4;1,2)}".
  std::string ToString() const;

 private:
  size_t num_cols_;
  std::vector<FtTuple> tuples_;
};

}  // namespace fts

#endif  // FTS_ALGEBRA_RELATION_H_
