// Materialized full-text algebra operators (paper Section 2.3.1).
//
// Every operator takes and returns normalized FtRelations, threading scores
// through the (optional) AlgebraScoreModel exactly as Section 3 specifies,
// and charging its inverted-list / tuple traffic to the (optional)
// EvalCounters. The join is the paper's equi-join on CNode only — position
// columns are concatenated, never compared — which is what makes the COMP
// engine's per-node cartesian products explicit.

#ifndef FTS_ALGEBRA_OPS_H_
#define FTS_ALGEBRA_OPS_H_

#include <span>
#include <string_view>

#include "algebra/relation.h"
#include "common/metrics.h"
#include "common/status.h"
#include "index/inverted_index.h"
#include "predicates/predicate.h"
#include "scoring/score_model.h"

namespace fts {

class DecodedBlockCache;  // index/decoded_block_cache.h

/// A predicate application against relation columns (0-based).
struct AlgebraPredicateCall {
  const PositionPredicate* pred = nullptr;
  std::vector<int> cols;
  std::vector<int64_t> consts;
};

/// R_token: one tuple per occurrence of `token` (text form) in the corpus,
/// scanned from the block-resident list. When `raw_oracle` is set
/// (differential tests only) the scan reads the raw oracle list instead;
/// the produced relation is identical either way. `cache` (nullable) serves
/// repeated block decodes within one query evaluation. `tombstones`
/// (nullable) filters deleted nodes out of the scan when `index` is one
/// segment of a snapshot. Returns Corruption when a lazily validated block
/// fails its first-touch decode (mmap-loaded index) rather than a
/// truncated relation.
StatusOr<FtRelation> OpScanToken(const InvertedIndex& index, std::string_view token,
                                 const AlgebraScoreModel* model,
                                 EvalCounters* counters,
                                 const RawPostingOracle* raw_oracle = nullptr,
                                 DecodedBlockCache* cache = nullptr,
                                 const TombstoneSet* tombstones = nullptr);

/// HasPos: one tuple per position of every node (materializes IL_ANY).
/// Fails like OpScanToken on lazily detected corruption.
StatusOr<FtRelation> OpScanHasPos(const InvertedIndex& index,
                                  const AlgebraScoreModel* model,
                                  EvalCounters* counters,
                                  const RawPostingOracle* raw_oracle = nullptr,
                                  DecodedBlockCache* cache = nullptr,
                                  const TombstoneSet* tombstones = nullptr);

/// SearchContext: one zero-column tuple per live context node — tombstoned
/// nodes are outside the universe (deleted documents neither match nor
/// complement).
FtRelation OpScanSearchContext(const InvertedIndex& index,
                               const AlgebraScoreModel* model, EvalCounters* counters,
                               const TombstoneSet* tombstones = nullptr);

/// π over the given columns, in the given order (CNode always kept).
StatusOr<FtRelation> OpProject(const FtRelation& in, std::span<const int> cols,
                               const AlgebraScoreModel* model, EvalCounters* counters);

/// Equi-join on CNode; output columns are left's then right's.
FtRelation OpJoin(const FtRelation& l, const FtRelation& r,
                  const AlgebraScoreModel* model, EvalCounters* counters);

/// σ_pred over the given columns.
StatusOr<FtRelation> OpSelect(const FtRelation& in, const AlgebraPredicateCall& call,
                              const AlgebraScoreModel* model, EvalCounters* counters);

/// Node-level anti-join: keeps the tuples of `l` whose node does not appear
/// in `r` (`r` must have zero position columns). This is how "Query AND NOT
/// Query*" evaluates without touching IL_ANY (paper Section 5.5's
/// difference, Algorithm 5).
StatusOr<FtRelation> OpAntiJoin(const FtRelation& l, const FtRelation& r,
                                const AlgebraScoreModel* model, EvalCounters* counters);

/// Set union / intersection / difference (schemas must match).
StatusOr<FtRelation> OpUnion(const FtRelation& l, const FtRelation& r,
                             const AlgebraScoreModel* model, EvalCounters* counters);
StatusOr<FtRelation> OpIntersect(const FtRelation& l, const FtRelation& r,
                                 const AlgebraScoreModel* model, EvalCounters* counters);
StatusOr<FtRelation> OpDifference(const FtRelation& l, const FtRelation& r,
                                  const AlgebraScoreModel* model, EvalCounters* counters);

}  // namespace fts

#endif  // FTS_ALGEBRA_OPS_H_
