#include "algebra/ops.h"

#include <algorithm>

#include "index/block_posting_list.h"
#include "index/decoded_block_cache.h"
#include "index/tombstone_set.h"
#include "testing/raw_posting_oracle.h"

namespace fts {

namespace {

double CombineViaModel(void* ctx, double a, double b) {
  return static_cast<const AlgebraScoreModel*>(ctx)->ProjectCombine(a, b);
}

void NormalizeWith(FtRelation* r, const AlgebraScoreModel* model) {
  if (model != nullptr) {
    r->Normalize(&CombineViaModel, const_cast<AlgebraScoreModel*>(model));
  } else {
    r->Normalize();
  }
}

// Iterates a relation's tuples grouped by node: [begin, end) index ranges.
struct NodeGroup {
  size_t begin, end;
  NodeId node;
};

std::vector<NodeGroup> GroupByNode(const FtRelation& r) {
  std::vector<NodeGroup> groups;
  size_t i = 0;
  while (i < r.size()) {
    size_t j = i;
    while (j < r.size() && r.tuple(j).node == r.tuple(i).node) ++j;
    groups.push_back(NodeGroup{i, j, r.tuple(i).node});
    i = j;
  }
  return groups;
}

// Materializes R_token from an inverted-list cursor: one tuple per
// occurrence, each carrying the entry's static leaf score. Shared by the
// block-resident scans and the raw-oracle scans of differential tests.
template <typename CursorT>
StatusOr<FtRelation> ScanTokenOccurrences(CursorT cursor, const InvertedIndex& index,
                                          TokenId tok, const AlgebraScoreModel* model,
                                          EvalCounters* counters) {
  FtRelation out(1);
  while (cursor.NextEntry() != kInvalidNode) {
    const NodeId node = cursor.current_node();
    const double s = model ? model->LeafScore(index, tok, node) : 0.0;
    for (const PositionInfo& p : cursor.GetPositions()) {
      FtTuple t;
      t.node = node;
      t.positions = {p};
      t.score = s;
      out.Add(std::move(t));
      if (counters) {
        ++counters->tuples_materialized;
        ++counters->positions_scanned;
      }
    }
  }
  FTS_RETURN_IF_ERROR(cursor.status());
  return out;  // already sorted by construction
}

// Materializes HasPos (IL_ANY) from a cursor.
template <typename CursorT>
StatusOr<FtRelation> ScanAnyOccurrences(CursorT cursor, const AlgebraScoreModel* model,
                                        EvalCounters* counters) {
  FtRelation out(1);
  const double s = model ? model->AnyLeafScore() : 0.0;
  while (cursor.NextEntry() != kInvalidNode) {
    const NodeId node = cursor.current_node();
    for (const PositionInfo& p : cursor.GetPositions()) {
      FtTuple t;
      t.node = node;
      t.positions = {p};
      t.score = s;
      out.Add(std::move(t));
      if (counters) {
        ++counters->tuples_materialized;
        ++counters->positions_scanned;
      }
    }
  }
  FTS_RETURN_IF_ERROR(cursor.status());
  return out;
}

}  // namespace

StatusOr<FtRelation> OpScanToken(const InvertedIndex& index, std::string_view token,
                                 const AlgebraScoreModel* model,
                                 EvalCounters* counters,
                                 const RawPostingOracle* raw_oracle,
                                 DecodedBlockCache* cache,
                                 const TombstoneSet* tombstones) {
  const TokenId tok = index.LookupToken(token);
  if (tok == kInvalidToken) return FtRelation(1);  // OOV token: empty relation
  if (raw_oracle != nullptr) {
    return ScanTokenOccurrences(
        ListCursor(raw_oracle->list(tok), counters, tombstones), index, tok,
        model, counters);
  }
  return ScanTokenOccurrences(
      BlockListCursor(index.block_list(tok), counters, cache, tombstones),
      index, tok, model, counters);
}

StatusOr<FtRelation> OpScanHasPos(const InvertedIndex& index,
                                  const AlgebraScoreModel* model,
                                  EvalCounters* counters,
                                  const RawPostingOracle* raw_oracle,
                                  DecodedBlockCache* cache,
                                  const TombstoneSet* tombstones) {
  if (raw_oracle != nullptr) {
    return ScanAnyOccurrences(
        ListCursor(&raw_oracle->any_list, counters, tombstones), model,
        counters);
  }
  return ScanAnyOccurrences(
      BlockListCursor(&index.block_any_list(), counters, cache, tombstones),
      model, counters);
}

FtRelation OpScanSearchContext(const InvertedIndex& index,
                               const AlgebraScoreModel* model, EvalCounters* counters,
                               const TombstoneSet* tombstones) {
  FtRelation out(0);
  const double s = model ? model->AnyLeafScore() : 0.0;
  for (NodeId n = 0; n < index.num_nodes(); ++n) {
    if (tombstones != nullptr && tombstones->Contains(n)) continue;
    FtTuple t;
    t.node = n;
    t.score = s;
    out.Add(std::move(t));
    if (counters) ++counters->tuples_materialized;
  }
  return out;
}

StatusOr<FtRelation> OpProject(const FtRelation& in, std::span<const int> cols,
                               const AlgebraScoreModel* model, EvalCounters* counters) {
  for (int c : cols) {
    if (c < 0 || static_cast<size_t>(c) >= in.num_cols()) {
      return Status::InvalidArgument("projection column " + std::to_string(c) +
                                     " out of range");
    }
  }
  FtRelation out(cols.size());
  for (size_t i = 0; i < in.size(); ++i) {
    const FtTuple& t = in.tuple(i);
    FtTuple p;
    p.node = t.node;
    p.score = t.score;
    p.positions.reserve(cols.size());
    for (int c : cols) p.positions.push_back(t.positions[c]);
    out.Add(std::move(p));
    if (counters) ++counters->tuples_materialized;
  }
  NormalizeWith(&out, model);
  return out;
}

FtRelation OpJoin(const FtRelation& l, const FtRelation& r,
                  const AlgebraScoreModel* model, EvalCounters* counters) {
  FtRelation out(l.num_cols() + r.num_cols());
  const auto lg = GroupByNode(l);
  const auto rg = GroupByNode(r);
  size_t li = 0, ri = 0;
  while (li < lg.size() && ri < rg.size()) {
    if (lg[li].node < rg[ri].node) {
      ++li;
    } else if (rg[ri].node < lg[li].node) {
      ++ri;
    } else {
      const size_t lcount = lg[li].end - lg[li].begin;
      const size_t rcount = rg[ri].end - rg[ri].begin;
      for (size_t a = lg[li].begin; a < lg[li].end; ++a) {
        for (size_t b = rg[ri].begin; b < rg[ri].end; ++b) {
          const FtTuple& ta = l.tuple(a);
          const FtTuple& tb = r.tuple(b);
          FtTuple t;
          t.node = ta.node;
          t.positions.reserve(out.num_cols());
          t.positions.insert(t.positions.end(), ta.positions.begin(),
                             ta.positions.end());
          t.positions.insert(t.positions.end(), tb.positions.begin(),
                             tb.positions.end());
          t.score = model ? model->JoinScore(ta.score, rcount, tb.score, lcount)
                          : 0.0;
          out.Add(std::move(t));
          if (counters) ++counters->tuples_materialized;
        }
      }
      ++li;
      ++ri;
    }
  }
  NormalizeWith(&out, model);
  return out;
}

StatusOr<FtRelation> OpSelect(const FtRelation& in, const AlgebraPredicateCall& call,
                              const AlgebraScoreModel* model, EvalCounters* counters) {
  if (call.pred == nullptr) return Status::InvalidArgument("null predicate in select");
  FTS_RETURN_IF_ERROR(call.pred->ValidateSignature(call.cols.size(), call.consts.size()));
  for (int c : call.cols) {
    if (c < 0 || static_cast<size_t>(c) >= in.num_cols()) {
      return Status::InvalidArgument("selection column " + std::to_string(c) +
                                     " out of range");
    }
  }
  FtRelation out(in.num_cols());
  std::vector<PositionInfo> args(call.cols.size());
  for (size_t i = 0; i < in.size(); ++i) {
    const FtTuple& t = in.tuple(i);
    for (size_t k = 0; k < call.cols.size(); ++k) args[k] = t.positions[call.cols[k]];
    if (counters) ++counters->predicate_evals;
    if (!call.pred->Eval(args, call.consts)) continue;
    FtTuple kept = t;
    if (model) {
      kept.score = model->SelectScore(t.score, *call.pred, args, call.consts);
    }
    out.Add(std::move(kept));
  }
  return out;  // order preserved; already normalized
}

StatusOr<FtRelation> OpAntiJoin(const FtRelation& l, const FtRelation& r,
                                const AlgebraScoreModel* model, EvalCounters* counters) {
  if (r.num_cols() != 0) {
    return Status::InvalidArgument("anti-join right side must be node-level");
  }
  FtRelation out(l.num_cols());
  size_t j = 0;
  for (size_t i = 0; i < l.size(); ++i) {
    if (counters) ++counters->tuples_materialized;
    const NodeId node = l.tuple(i).node;
    while (j < r.size() && r.tuple(j).node < node) ++j;
    if (j < r.size() && r.tuple(j).node == node) continue;
    FtTuple t = l.tuple(i);
    if (model) t.score = model->DifferenceScore(t.score);
    out.Add(std::move(t));
  }
  return out;
}

StatusOr<FtRelation> OpUnion(const FtRelation& l, const FtRelation& r,
                             const AlgebraScoreModel* model, EvalCounters* counters) {
  if (l.num_cols() != r.num_cols()) {
    return Status::InvalidArgument("union schema mismatch");
  }
  FtRelation out(l.num_cols());
  size_t i = 0, j = 0;
  while (i < l.size() || j < r.size()) {
    if (counters) ++counters->tuples_materialized;
    if (j >= r.size() || (i < l.size() && TupleLess(l.tuple(i), r.tuple(j)))) {
      out.Add(l.tuple(i++));
    } else if (i >= l.size() || TupleLess(r.tuple(j), l.tuple(i))) {
      out.Add(r.tuple(j++));
    } else {
      FtTuple t = l.tuple(i);
      t.score = model ? model->UnionBoth(l.tuple(i).score, r.tuple(j).score)
                      : l.tuple(i).score;
      out.Add(std::move(t));
      ++i;
      ++j;
    }
  }
  return out;
}

StatusOr<FtRelation> OpIntersect(const FtRelation& l, const FtRelation& r,
                                 const AlgebraScoreModel* model, EvalCounters* counters) {
  if (l.num_cols() != r.num_cols()) {
    return Status::InvalidArgument("intersect schema mismatch");
  }
  FtRelation out(l.num_cols());
  size_t i = 0, j = 0;
  while (i < l.size() && j < r.size()) {
    if (counters) ++counters->tuples_materialized;
    if (TupleLess(l.tuple(i), r.tuple(j))) {
      ++i;
    } else if (TupleLess(r.tuple(j), l.tuple(i))) {
      ++j;
    } else {
      FtTuple t = l.tuple(i);
      t.score = model ? model->IntersectScore(l.tuple(i).score, r.tuple(j).score)
                      : l.tuple(i).score;
      out.Add(std::move(t));
      ++i;
      ++j;
    }
  }
  return out;
}

StatusOr<FtRelation> OpDifference(const FtRelation& l, const FtRelation& r,
                                  const AlgebraScoreModel* model,
                                  EvalCounters* counters) {
  if (l.num_cols() != r.num_cols()) {
    return Status::InvalidArgument("difference schema mismatch");
  }
  FtRelation out(l.num_cols());
  size_t i = 0, j = 0;
  while (i < l.size()) {
    if (counters) ++counters->tuples_materialized;
    while (j < r.size() && TupleLess(r.tuple(j), l.tuple(i))) ++j;
    if (j < r.size() && TupleEq(l.tuple(i), r.tuple(j))) {
      ++i;
      continue;
    }
    FtTuple t = l.tuple(i);
    if (model) t.score = model->DifferenceScore(t.score);
    out.Add(std::move(t));
    ++i;
  }
  return out;
}

}  // namespace fts
