// Semantic translation of surface queries to the full-text calculus, per
// the denotations in paper Sections 4.1-4.3:
//
//   'tok'            ↦ ∃p (hasPos(n,p) ∧ hasToken(p,'tok'))
//   ANY              ↦ ∃p hasPos(n,p)
//   v HAS 'tok'      ↦ hasToken(v,'tok')
//   v HAS ANY        ↦ hasPos(n,v)
//   NOT/AND/OR       ↦ ¬ / ∧ / ∨
//   SOME v Q         ↦ ∃v (hasPos(n,v) ∧ Q)
//   EVERY v Q        ↦ ∀v (hasPos(n,v) ⇒ Q)
//   pred(v..., c...) ↦ pred(v..., c...)
//   dist(t1,t2,d)    ↦ ∃p1(hasPos ∧ hasToken(p1,t1) ∧
//                        ∃p2(hasPos ∧ hasToken(p2,t2) ∧ distance(p1,p2,d)))
//
// Variables are resolved lexically; a variable used outside any enclosing
// SOME/EVERY is an error (the resulting calculus query must be closed).

#ifndef FTS_LANG_TRANSLATE_H_
#define FTS_LANG_TRANSLATE_H_

#include "calculus/ftc.h"
#include "common/status.h"
#include "lang/ast.h"
#include "predicates/predicate.h"

namespace fts {

/// Translates a parsed surface query into a validated, closed calculus
/// query. Predicate names resolve against `registry`.
StatusOr<CalcQuery> TranslateToCalculus(const LangExprPtr& query,
                                        const PredicateRegistry& registry =
                                            PredicateRegistry::Default());

}  // namespace fts

#endif  // FTS_LANG_TRANSLATE_H_
