#include "lang/ast.h"

namespace fts {

// LangExpr's constructor is private; the member factories below are the
// only allocation points.

LangExprPtr LangExpr::Token(std::string token) {
  auto e = std::shared_ptr<LangExpr>(new LangExpr());
  e->kind_ = Kind::kToken;
  e->token_ = std::move(token);
  return e;
}

LangExprPtr LangExpr::Any() {
  auto e = std::shared_ptr<LangExpr>(new LangExpr());
  e->kind_ = Kind::kAny;
  return e;
}

LangExprPtr LangExpr::VarHasToken(std::string var, std::string token) {
  auto e = std::shared_ptr<LangExpr>(new LangExpr());
  e->kind_ = Kind::kVarHasToken;
  e->var_ = std::move(var);
  e->token_ = std::move(token);
  return e;
}

LangExprPtr LangExpr::VarHasAny(std::string var) {
  auto e = std::shared_ptr<LangExpr>(new LangExpr());
  e->kind_ = Kind::kVarHasAny;
  e->var_ = std::move(var);
  return e;
}

LangExprPtr LangExpr::Not(LangExprPtr child) {
  auto e = std::shared_ptr<LangExpr>(new LangExpr());
  e->kind_ = Kind::kNot;
  e->left_ = std::move(child);
  return e;
}

LangExprPtr LangExpr::And(LangExprPtr l, LangExprPtr r) {
  auto e = std::shared_ptr<LangExpr>(new LangExpr());
  e->kind_ = Kind::kAnd;
  e->left_ = std::move(l);
  e->right_ = std::move(r);
  return e;
}

LangExprPtr LangExpr::Or(LangExprPtr l, LangExprPtr r) {
  auto e = std::shared_ptr<LangExpr>(new LangExpr());
  e->kind_ = Kind::kOr;
  e->left_ = std::move(l);
  e->right_ = std::move(r);
  return e;
}

LangExprPtr LangExpr::Some(std::string var, LangExprPtr body) {
  auto e = std::shared_ptr<LangExpr>(new LangExpr());
  e->kind_ = Kind::kSome;
  e->var_ = std::move(var);
  e->left_ = std::move(body);
  return e;
}

LangExprPtr LangExpr::Every(std::string var, LangExprPtr body) {
  auto e = std::shared_ptr<LangExpr>(new LangExpr());
  e->kind_ = Kind::kEvery;
  e->var_ = std::move(var);
  e->left_ = std::move(body);
  return e;
}

LangExprPtr LangExpr::Pred(std::string name, std::vector<std::string> vars,
                           std::vector<int64_t> consts) {
  auto e = std::shared_ptr<LangExpr>(new LangExpr());
  e->kind_ = Kind::kPred;
  e->pred_name_ = std::move(name);
  e->pred_vars_ = std::move(vars);
  e->pred_consts_ = std::move(consts);
  return e;
}

LangExprPtr LangExpr::Dist(std::string tok1, std::string tok2, int64_t limit) {
  auto e = std::shared_ptr<LangExpr>(new LangExpr());
  e->kind_ = Kind::kDist;
  e->token_ = std::move(tok1);
  e->var_ = std::move(tok2);
  e->pred_consts_ = {limit};
  return e;
}

std::string LangExpr::ToString() const {
  switch (kind_) {
    case Kind::kToken:
      return "'" + token_ + "'";
    case Kind::kAny:
      return "ANY";
    case Kind::kVarHasToken:
      return var_ + " HAS '" + token_ + "'";
    case Kind::kVarHasAny:
      return var_ + " HAS ANY";
    case Kind::kNot:
      return "NOT (" + left_->ToString() + ")";
    case Kind::kAnd:
      return "(" + left_->ToString() + " AND " + right_->ToString() + ")";
    case Kind::kOr:
      return "(" + left_->ToString() + " OR " + right_->ToString() + ")";
    case Kind::kSome:
      return "SOME " + var_ + " (" + left_->ToString() + ")";
    case Kind::kEvery:
      return "EVERY " + var_ + " (" + left_->ToString() + ")";
    case Kind::kPred: {
      std::string out = pred_name_ + "(";
      bool first = true;
      for (const std::string& v : pred_vars_) {
        if (!first) out += ", ";
        first = false;
        out += v;
      }
      for (int64_t c : pred_consts_) {
        if (!first) out += ", ";
        first = false;
        out += std::to_string(c);
      }
      return out + ")";
    }
    case Kind::kDist: {
      std::string t1 = token_.empty() ? "ANY" : "'" + token_ + "'";
      std::string t2 = var_.empty() ? "ANY" : "'" + var_ + "'";
      return "dist(" + t1 + ", " + t2 + ", " + std::to_string(pred_consts_[0]) + ")";
    }
  }
  return "?";
}

void CollectSurfaceTokens(const LangExprPtr& e, std::vector<std::string>* out) {
  if (!e) return;
  switch (e->kind()) {
    case LangExpr::Kind::kToken:
      out->push_back(e->token());
      return;
    case LangExpr::Kind::kVarHasToken:
      out->push_back(e->token());
      return;
    case LangExpr::Kind::kDist:
      if (!e->dist_tok1().empty()) out->push_back(e->dist_tok1());
      if (!e->dist_tok2().empty()) out->push_back(e->dist_tok2());
      return;
    case LangExpr::Kind::kAny:
    case LangExpr::Kind::kVarHasAny:
    case LangExpr::Kind::kPred:
      return;
    case LangExpr::Kind::kNot:
    case LangExpr::Kind::kSome:
    case LangExpr::Kind::kEvery:
      CollectSurfaceTokens(e->child(), out);
      return;
    case LangExpr::Kind::kAnd:
    case LangExpr::Kind::kOr:
      CollectSurfaceTokens(e->left(), out);
      CollectSurfaceTokens(e->right(), out);
      return;
  }
}

LangExprPtr NormalizeSurface(const LangExprPtr& e) {
  if (!e) return e;
  switch (e->kind()) {
    case LangExpr::Kind::kToken:
    case LangExpr::Kind::kAny:
    case LangExpr::Kind::kVarHasToken:
    case LangExpr::Kind::kVarHasAny:
    case LangExpr::Kind::kPred:
    case LangExpr::Kind::kDist:
      return e;
    case LangExpr::Kind::kNot: {
      LangExprPtr c = NormalizeSurface(e->child());
      if (c->kind() == LangExpr::Kind::kNot) return c->child();  // ¬¬A = A
      return LangExpr::Not(std::move(c));
    }
    case LangExpr::Kind::kAnd:
      return LangExpr::And(NormalizeSurface(e->left()), NormalizeSurface(e->right()));
    case LangExpr::Kind::kOr:
      return LangExpr::Or(NormalizeSurface(e->left()), NormalizeSurface(e->right()));
    case LangExpr::Kind::kSome:
      return LangExpr::Some(e->var(), NormalizeSurface(e->child()));
    case LangExpr::Kind::kEvery: {
      // EVERY v Q  ≡  NOT SOME v (NOT Q); re-normalize to collapse ¬¬.
      LangExprPtr body = NormalizeSurface(e->child());
      LangExprPtr inner = body->kind() == LangExpr::Kind::kNot
                              ? body->child()
                              : LangExpr::Not(std::move(body));
      return LangExpr::Not(LangExpr::Some(e->var(), std::move(inner)));
    }
  }
  return e;
}

}  // namespace fts
