// Lexer shared by the BOOL / DIST / COMP parsers. Produces a token stream
// of keywords (NOT AND OR SOME EVERY ANY HAS, case-insensitive), quoted
// string literals, bare identifiers, integers and punctuation, with byte
// offsets for error reporting.

#ifndef FTS_LANG_LEXER_H_
#define FTS_LANG_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace fts {

/// Lexical token categories.
enum class LexKind {
  kIdent,    ///< bare identifier (variable, predicate name, or bare token)
  kString,   ///< 'quoted literal'
  kInt,      ///< integer literal
  kLParen,
  kRParen,
  kComma,
  kNot,
  kAnd,
  kOr,
  kSome,
  kEvery,
  kAny,
  kHas,
  kEnd,      ///< end of input
};

const char* LexKindToString(LexKind kind);

/// One lexical token with its source offset.
struct LexToken {
  LexKind kind;
  std::string text;   // identifier spelling / string contents
  int64_t value = 0;  // kInt only
  size_t offset = 0;  // byte offset in the query string
};

/// Tokenizes `query`; fails with a position-annotated InvalidArgument on
/// unterminated strings or unexpected characters. The result always ends
/// with a kEnd token.
StatusOr<std::vector<LexToken>> LexQuery(std::string_view query);

}  // namespace fts

#endif  // FTS_LANG_LEXER_H_
