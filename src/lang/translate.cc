#include "lang/translate.h"

#include <unordered_map>
#include <vector>

#include "calculus/analysis.h"

namespace fts {

namespace {

class Translator {
 public:
  explicit Translator(const PredicateRegistry& registry) : registry_(registry) {}

  StatusOr<CalcExprPtr> Translate(const LangExprPtr& e) {
    switch (e->kind()) {
      case LangExpr::Kind::kToken: {
        const VarId v = Fresh();
        return CalcExprPtr(CalcExpr::Exists(v, CalcExpr::HasToken(v, e->token())));
      }
      case LangExpr::Kind::kAny: {
        const VarId v = Fresh();
        return CalcExprPtr(CalcExpr::Exists(v, CalcExpr::HasPos(v)));
      }
      case LangExpr::Kind::kVarHasToken: {
        FTS_ASSIGN_OR_RETURN(VarId v, Resolve(e->var()));
        return CalcExprPtr(CalcExpr::HasToken(v, e->token()));
      }
      case LangExpr::Kind::kVarHasAny: {
        FTS_ASSIGN_OR_RETURN(VarId v, Resolve(e->var()));
        return CalcExprPtr(CalcExpr::HasPos(v));
      }
      case LangExpr::Kind::kNot: {
        FTS_ASSIGN_OR_RETURN(CalcExprPtr c, Translate(e->child()));
        return CalcExprPtr(CalcExpr::Not(std::move(c)));
      }
      case LangExpr::Kind::kAnd: {
        FTS_ASSIGN_OR_RETURN(CalcExprPtr l, Translate(e->left()));
        FTS_ASSIGN_OR_RETURN(CalcExprPtr r, Translate(e->right()));
        return CalcExprPtr(CalcExpr::And(std::move(l), std::move(r)));
      }
      case LangExpr::Kind::kOr: {
        FTS_ASSIGN_OR_RETURN(CalcExprPtr l, Translate(e->left()));
        FTS_ASSIGN_OR_RETURN(CalcExprPtr r, Translate(e->right()));
        return CalcExprPtr(CalcExpr::Or(std::move(l), std::move(r)));
      }
      case LangExpr::Kind::kSome:
      case LangExpr::Kind::kEvery: {
        const VarId v = Fresh();
        scopes_.push_back({e->var(), v});
        FTS_ASSIGN_OR_RETURN(CalcExprPtr body, Translate(e->child()));
        scopes_.pop_back();
        return e->kind() == LangExpr::Kind::kSome
                   ? CalcExprPtr(CalcExpr::Exists(v, std::move(body)))
                   : CalcExprPtr(CalcExpr::ForAll(v, std::move(body)));
      }
      case LangExpr::Kind::kPred: {
        const PositionPredicate* pred = registry_.Find(e->pred_name());
        if (pred == nullptr) {
          return Status::NotFound("unknown predicate '" + e->pred_name() + "'");
        }
        FTS_RETURN_IF_ERROR(
            pred->ValidateSignature(e->pred_vars().size(), e->pred_consts().size()));
        std::vector<VarId> vars;
        vars.reserve(e->pred_vars().size());
        for (const std::string& name : e->pred_vars()) {
          FTS_ASSIGN_OR_RETURN(VarId v, Resolve(name));
          vars.push_back(v);
        }
        return CalcExprPtr(CalcExpr::Pred(pred, std::move(vars), e->pred_consts()));
      }
      case LangExpr::Kind::kDist: {
        const PositionPredicate* distance = registry_.Find("distance");
        if (distance == nullptr) {
          return Status::Internal("builtin predicate 'distance' missing");
        }
        const VarId p1 = Fresh();
        const VarId p2 = Fresh();
        CalcExprPtr bind2 = e->dist_tok2().empty()
                                ? CalcExpr::HasPos(p2)
                                : CalcExpr::HasToken(p2, e->dist_tok2());
        CalcExprPtr inner = CalcExpr::Exists(
            p2, CalcExpr::And(std::move(bind2),
                              CalcExpr::Pred(distance, {p1, p2}, {e->dist_limit()})));
        CalcExprPtr bind1 = e->dist_tok1().empty()
                                ? CalcExpr::HasPos(p1)
                                : CalcExpr::HasToken(p1, e->dist_tok1());
        return CalcExprPtr(
            CalcExpr::Exists(p1, CalcExpr::And(std::move(bind1), std::move(inner))));
      }
    }
    return Status::Internal("unreachable surface kind");
  }

 private:
  VarId Fresh() { return next_var_++; }

  StatusOr<VarId> Resolve(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->first == name) return it->second;
    }
    return Status::InvalidArgument("variable '" + name +
                                   "' used outside any SOME/EVERY binding");
  }

  const PredicateRegistry& registry_;
  std::vector<std::pair<std::string, VarId>> scopes_;
  VarId next_var_ = 0;
};

}  // namespace

StatusOr<CalcQuery> TranslateToCalculus(const LangExprPtr& query,
                                        const PredicateRegistry& registry) {
  if (!query) return Status::InvalidArgument("null query");
  Translator t(registry);
  FTS_ASSIGN_OR_RETURN(CalcExprPtr expr, t.Translate(query));
  CalcQuery q{std::move(expr)};
  FTS_RETURN_IF_ERROR(ValidateQuery(q));
  return q;
}

}  // namespace fts
