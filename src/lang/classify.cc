#include "lang/classify.h"

#include <vector>

namespace fts {

const char* LanguageClassToString(LanguageClass cls) {
  switch (cls) {
    case LanguageClass::kBoolNoNeg: return "BOOL-NONEG";
    case LanguageClass::kBool: return "BOOL";
    case LanguageClass::kPpred: return "PPRED";
    case LanguageClass::kNpred: return "NPRED";
    case LanguageClass::kComp: return "COMP";
  }
  return "?";
}

namespace {

void FreeVarsImpl(const LangExprPtr& e, std::vector<std::string>* bound,
                  std::set<std::string>* out) {
  switch (e->kind()) {
    case LangExpr::Kind::kToken:
    case LangExpr::Kind::kAny:
    case LangExpr::Kind::kDist:
      return;
    case LangExpr::Kind::kVarHasToken:
    case LangExpr::Kind::kVarHasAny: {
      for (const std::string& b : *bound) {
        if (b == e->var()) return;
      }
      out->insert(e->var());
      return;
    }
    case LangExpr::Kind::kPred: {
      for (const std::string& v : e->pred_vars()) {
        bool is_bound = false;
        for (const std::string& b : *bound) {
          if (b == v) {
            is_bound = true;
            break;
          }
        }
        if (!is_bound) out->insert(v);
      }
      return;
    }
    case LangExpr::Kind::kNot:
      FreeVarsImpl(e->child(), bound, out);
      return;
    case LangExpr::Kind::kAnd:
    case LangExpr::Kind::kOr:
      FreeVarsImpl(e->left(), bound, out);
      FreeVarsImpl(e->right(), bound, out);
      return;
    case LangExpr::Kind::kSome:
    case LangExpr::Kind::kEvery:
      bound->push_back(e->var());
      FreeVarsImpl(e->child(), bound, out);
      bound->pop_back();
      return;
  }
}

/// True when `e` stays within plain BOOL (tokens/ANY/NOT/AND/OR).
bool IsBool(const LangExprPtr& e) {
  switch (e->kind()) {
    case LangExpr::Kind::kToken:
    case LangExpr::Kind::kAny:
      return true;
    case LangExpr::Kind::kNot:
      return IsBool(e->child());
    case LangExpr::Kind::kAnd:
    case LangExpr::Kind::kOr:
      return IsBool(e->left()) && IsBool(e->right());
    default:
      return false;
  }
}

/// True when `e` stays within BOOL-NONEG: tokens only (no ANY), NOT only as
/// a conjunct that has a positive sibling conjunct.
bool IsBoolNoNeg(const LangExprPtr& e, bool not_allowed_here) {
  switch (e->kind()) {
    case LangExpr::Kind::kToken:
      return true;
    case LangExpr::Kind::kNot:
      return not_allowed_here && IsBoolNoNeg(e->child(), false);
    case LangExpr::Kind::kAnd: {
      // At least one conjunct must be positive for the AND NOT form.
      const bool lneg = e->left()->kind() == LangExpr::Kind::kNot;
      const bool rneg = e->right()->kind() == LangExpr::Kind::kNot;
      if (lneg && rneg) return false;
      return IsBoolNoNeg(e->left(), true) && IsBoolNoNeg(e->right(), true);
    }
    case LangExpr::Kind::kOr:
      return IsBoolNoNeg(e->left(), false) && IsBoolNoNeg(e->right(), false);
    default:
      return false;
  }
}

/// Flattens an AND chain into conjuncts.
void FlattenAnd(const LangExprPtr& e, std::vector<LangExprPtr>* out) {
  if (e->kind() == LangExpr::Kind::kAnd) {
    FlattenAnd(e->left(), out);
    FlattenAnd(e->right(), out);
  } else {
    out->push_back(e);
  }
}

/// Checks whether `e` is evaluable by the pipelined engines.
/// `allow_negative_preds` distinguishes NPRED from PPRED.
bool IsPipelined(const LangExprPtr& e, bool allow_negative_preds,
                 const PredicateRegistry& registry) {
  switch (e->kind()) {
    case LangExpr::Kind::kToken:
    case LangExpr::Kind::kVarHasToken:
    case LangExpr::Kind::kDist:
      return true;
    case LangExpr::Kind::kAny:
    case LangExpr::Kind::kVarHasAny:
      // Explicit ANY requires IL_ANY, which PPRED/NPRED never touch
      // (Section 5.5: "cannot explicitly specify ANY").
      return false;
    case LangExpr::Kind::kPred: {
      const PositionPredicate* pred = registry.Find(e->pred_name());
      if (pred == nullptr) return false;
      if (pred->cls() == PredicateClass::kPositive) return true;
      return allow_negative_preds && pred->cls() == PredicateClass::kNegative;
    }
    case LangExpr::Kind::kAnd: {
      std::vector<LangExprPtr> conjuncts;
      FlattenAnd(e, &conjuncts);
      size_t positives = 0;
      for (const LangExprPtr& c : conjuncts) {
        if (c->kind() == LangExpr::Kind::kNot) {
          // "Query AND NOT Query*": the negated side must be closed and
          // itself pipeline-evaluable (it runs as a node-level difference).
          // Negative predicates are not allowed under the negation: NPRED's
          // union-over-orderings does not commute with complement.
          if (!FreeSurfaceVars(c->child()).empty()) return false;
          if (!IsPipelined(c->child(), /*allow_negative_preds=*/false, registry)) {
            return false;
          }
        } else {
          if (!IsPipelined(c, allow_negative_preds, registry)) return false;
          ++positives;
        }
      }
      return positives > 0;  // a pure negation has no driving scan
    }
    case LangExpr::Kind::kOr: {
      // Branches must bind the same variables: otherwise union-compatible
      // schemas would require IL_ANY padding.
      if (FreeSurfaceVars(e->left()) != FreeSurfaceVars(e->right())) return false;
      return IsPipelined(e->left(), allow_negative_preds, registry) &&
             IsPipelined(e->right(), allow_negative_preds, registry);
    }
    case LangExpr::Kind::kSome:
      return IsPipelined(e->child(), allow_negative_preds, registry);
    case LangExpr::Kind::kEvery:
      return false;  // normalized away before classification
    case LangExpr::Kind::kNot:
      return false;  // negation outside AND needs the node universe
  }
  return false;
}

}  // namespace

std::set<std::string> FreeSurfaceVars(const LangExprPtr& e) {
  std::set<std::string> out;
  std::vector<std::string> bound;
  if (e) FreeVarsImpl(e, &bound, &out);
  return out;
}

LanguageClass ClassifyQuery(const LangExprPtr& query,
                            const PredicateRegistry& registry) {
  LangExprPtr e = NormalizeSurface(query);
  if (IsBoolNoNeg(e, false)) return LanguageClass::kBoolNoNeg;
  if (IsBool(e)) return LanguageClass::kBool;
  if (IsPipelined(e, /*allow_negative_preds=*/false, registry)) {
    return LanguageClass::kPpred;
  }
  if (IsPipelined(e, /*allow_negative_preds=*/true, registry)) {
    return LanguageClass::kNpred;
  }
  return LanguageClass::kComp;
}

}  // namespace fts
