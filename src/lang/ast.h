// Surface syntax trees for the paper's query languages (Section 4):
//
//   BOOL       Query := Token | NOT Q | Q AND Q | Q OR Q
//              Token := StringLiteral | ANY
//   BOOL-NONEG BOOL without ANY, NOT only as "Q AND NOT Q"
//   DIST       BOOL plus dist(Token, Token, Integer)
//   COMP       BOOL plus position variables:
//              Query += SOME Var Q | EVERY Var Q | Preds
//              Token += Var HAS StringLiteral | Var HAS ANY
//
// One AST covers all four; parsers restrict which constructs may appear and
// the classifier (lang/classify.h) maps any tree to the cheapest evaluation
// class. DIST's dist(...) is kept as its own node (kDist) so that language
// membership remains visible after parsing; translation desugars it.

#ifndef FTS_LANG_AST_H_
#define FTS_LANG_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace fts {

class LangExpr;
using LangExprPtr = std::shared_ptr<const LangExpr>;

/// Immutable surface-language expression node.
class LangExpr {
 public:
  enum class Kind {
    kToken,        ///< 'literal'
    kAny,          ///< ANY
    kVarHasToken,  ///< var HAS 'literal'
    kVarHasAny,    ///< var HAS ANY
    kNot,
    kAnd,
    kOr,
    kSome,         ///< SOME var Query
    kEvery,        ///< EVERY var Query
    kPred,         ///< name(var..., int...)
    kDist,         ///< dist(Token, Token, Integer)   (DIST language sugar)
  };

  Kind kind() const { return kind_; }
  const std::string& token() const { return token_; }
  const std::string& var() const { return var_; }
  const std::string& pred_name() const { return pred_name_; }
  const std::vector<std::string>& pred_vars() const { return pred_vars_; }
  const std::vector<int64_t>& pred_consts() const { return pred_consts_; }
  /// kDist accessors: empty token string means ANY on that side.
  const std::string& dist_tok1() const { return token_; }
  const std::string& dist_tok2() const { return var_; }
  int64_t dist_limit() const { return pred_consts_[0]; }
  const LangExprPtr& child() const { return left_; }
  const LangExprPtr& left() const { return left_; }
  const LangExprPtr& right() const { return right_; }

  /// Round-trippable COMP-syntax rendering.
  std::string ToString() const;

  // Factories.
  static LangExprPtr Token(std::string token);
  static LangExprPtr Any();
  static LangExprPtr VarHasToken(std::string var, std::string token);
  static LangExprPtr VarHasAny(std::string var);
  static LangExprPtr Not(LangExprPtr e);
  static LangExprPtr And(LangExprPtr l, LangExprPtr r);
  static LangExprPtr Or(LangExprPtr l, LangExprPtr r);
  static LangExprPtr Some(std::string var, LangExprPtr body);
  static LangExprPtr Every(std::string var, LangExprPtr body);
  static LangExprPtr Pred(std::string name, std::vector<std::string> vars,
                          std::vector<int64_t> consts);
  /// dist(tok1, tok2, limit); empty token means ANY.
  static LangExprPtr Dist(std::string tok1, std::string tok2, int64_t limit);

 private:
  LangExpr() = default;

  Kind kind_;
  std::string token_;
  std::string var_;
  std::string pred_name_;
  std::vector<std::string> pred_vars_;
  std::vector<int64_t> pred_consts_;
  LangExprPtr left_, right_;
};

/// Rewrites EVERY v Q into NOT SOME v (NOT Q) and removes double negations.
/// Classification and the pipelined engines run on normalized trees.
LangExprPtr NormalizeSurface(const LangExprPtr& e);

/// Appends every token literal mentioned in `e` (including dist() operands
/// and HAS targets) to `out`; used to build query-specific score models.
void CollectSurfaceTokens(const LangExprPtr& e, std::vector<std::string>* out);

}  // namespace fts

#endif  // FTS_LANG_AST_H_
