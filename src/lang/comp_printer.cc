#include "lang/comp_printer.h"

#include "calculus/analysis.h"

namespace fts {

std::string FormatCalcExprAsComp(const CalcExprPtr& e) {
  switch (e->kind()) {
    case CalcExpr::Kind::kHasPos:
      return "p" + std::to_string(e->var()) + " HAS ANY";
    case CalcExpr::Kind::kHasToken:
      return "p" + std::to_string(e->var()) + " HAS '" + e->token() + "'";
    case CalcExpr::Kind::kPred: {
      std::string out(e->pred().pred->name());
      out += "(";
      bool first = true;
      for (VarId v : e->pred().vars) {
        if (!first) out += ", ";
        first = false;
        out += "p" + std::to_string(v);
      }
      for (int64_t c : e->pred().consts) {
        if (!first) out += ", ";
        first = false;
        out += std::to_string(c);
      }
      return out + ")";
    }
    case CalcExpr::Kind::kNot:
      return "NOT (" + FormatCalcExprAsComp(e->child()) + ")";
    case CalcExpr::Kind::kAnd:
      return "(" + FormatCalcExprAsComp(e->left()) + " AND " +
             FormatCalcExprAsComp(e->right()) + ")";
    case CalcExpr::Kind::kOr:
      return "(" + FormatCalcExprAsComp(e->left()) + " OR " +
             FormatCalcExprAsComp(e->right()) + ")";
    case CalcExpr::Kind::kExists:
      return "SOME p" + std::to_string(e->var()) + " (" +
             FormatCalcExprAsComp(e->child()) + ")";
    case CalcExpr::Kind::kForAll:
      return "EVERY p" + std::to_string(e->var()) + " (" +
             FormatCalcExprAsComp(e->child()) + ")";
  }
  return "?";
}

StatusOr<std::string> FormatCalcAsComp(const CalcQuery& query) {
  FTS_RETURN_IF_ERROR(ValidateQuery(query));
  return FormatCalcExprAsComp(query.expr);
}

}  // namespace fts
