#include "lang/parser.h"

#include <vector>

#include "lang/lexer.h"

namespace fts {

const char* SurfaceLanguageToString(SurfaceLanguage lang) {
  switch (lang) {
    case SurfaceLanguage::kBoolNoNeg: return "BOOL-NONEG";
    case SurfaceLanguage::kBool: return "BOOL";
    case SurfaceLanguage::kDist: return "DIST";
    case SurfaceLanguage::kComp: return "COMP";
  }
  return "?";
}

namespace {

class Parser {
 public:
  Parser(std::vector<LexToken> tokens, const PredicateRegistry& registry)
      : tokens_(std::move(tokens)), registry_(registry) {}

  StatusOr<LangExprPtr> Parse() {
    FTS_ASSIGN_OR_RETURN(LangExprPtr e, ParseOr());
    if (cur().kind != LexKind::kEnd) {
      return Err("unexpected trailing input");
    }
    return e;
  }

 private:
  const LexToken& cur() const { return tokens_[pos_]; }
  const LexToken& peek() const {
    return tokens_[pos_ + 1 < tokens_.size() ? pos_ + 1 : tokens_.size() - 1];
  }
  void Advance() { if (pos_ + 1 < tokens_.size()) ++pos_; }

  Status Err(const std::string& msg) const {
    return Status::InvalidArgument(msg + " at offset " + std::to_string(cur().offset) +
                                   " (near " + std::string(LexKindToString(cur().kind)) +
                                   (cur().text.empty() ? "" : " '" + cur().text + "'") +
                                   ")");
  }

  Status Expect(LexKind kind) {
    if (cur().kind != kind) {
      return Err(std::string("expected ") + LexKindToString(kind));
    }
    Advance();
    return Status::OK();
  }

  StatusOr<LangExprPtr> ParseOr() {
    FTS_ASSIGN_OR_RETURN(LangExprPtr l, ParseAnd());
    while (cur().kind == LexKind::kOr) {
      Advance();
      FTS_ASSIGN_OR_RETURN(LangExprPtr r, ParseAnd());
      l = LangExpr::Or(std::move(l), std::move(r));
    }
    return l;
  }

  StatusOr<LangExprPtr> ParseAnd() {
    FTS_ASSIGN_OR_RETURN(LangExprPtr l, ParseUnary());
    while (cur().kind == LexKind::kAnd) {
      Advance();
      FTS_ASSIGN_OR_RETURN(LangExprPtr r, ParseUnary());
      l = LangExpr::And(std::move(l), std::move(r));
    }
    return l;
  }

  StatusOr<LangExprPtr> ParseUnary() {
    switch (cur().kind) {
      case LexKind::kNot: {
        Advance();
        FTS_ASSIGN_OR_RETURN(LangExprPtr e, ParseUnary());
        return LangExprPtr(LangExpr::Not(std::move(e)));
      }
      case LexKind::kSome:
      case LexKind::kEvery: {
        const bool some = cur().kind == LexKind::kSome;
        Advance();
        if (cur().kind != LexKind::kIdent) return Err("expected variable name");
        std::string var = cur().text;
        Advance();
        FTS_ASSIGN_OR_RETURN(LangExprPtr body, ParseUnary());
        return some ? LangExpr::Some(std::move(var), std::move(body))
                    : LangExpr::Every(std::move(var), std::move(body));
      }
      default:
        return ParsePrimary();
    }
  }

  StatusOr<LangExprPtr> ParsePrimary() {
    switch (cur().kind) {
      case LexKind::kLParen: {
        Advance();
        FTS_ASSIGN_OR_RETURN(LangExprPtr e, ParseOr());
        FTS_RETURN_IF_ERROR(Expect(LexKind::kRParen));
        return e;
      }
      case LexKind::kString: {
        std::string tok = cur().text;
        Advance();
        return LangExprPtr(LangExpr::Token(std::move(tok)));
      }
      case LexKind::kAny:
        Advance();
        return LangExprPtr(LangExpr::Any());
      case LexKind::kIdent: {
        if (peek().kind == LexKind::kHas) return ParseHas();
        if (peek().kind == LexKind::kLParen) return ParseCall();
        // Bare word: token literal.
        std::string tok = cur().text;
        Advance();
        return LangExprPtr(LangExpr::Token(std::move(tok)));
      }
      default:
        return Err("expected a token, ANY, variable, predicate, or '('");
    }
  }

  StatusOr<LangExprPtr> ParseHas() {
    std::string var = cur().text;
    Advance();  // ident
    Advance();  // HAS
    if (cur().kind == LexKind::kString || cur().kind == LexKind::kIdent) {
      std::string tok = cur().text;
      Advance();
      return LangExprPtr(LangExpr::VarHasToken(std::move(var), std::move(tok)));
    }
    if (cur().kind == LexKind::kAny) {
      Advance();
      return LangExprPtr(LangExpr::VarHasAny(std::move(var)));
    }
    return Err("expected string literal or ANY after HAS");
  }

  // Predicate application, or DIST's dist(Token, Token, Integer).
  StatusOr<LangExprPtr> ParseCall() {
    std::string name = cur().text;
    Advance();  // ident
    Advance();  // '('
    if (name == "dist") return ParseDistCall();

    const PositionPredicate* pred = registry_.Find(name);
    if (pred == nullptr) {
      return Status::InvalidArgument("unknown predicate '" + name + "'");
    }
    std::vector<std::string> vars;
    std::vector<int64_t> consts;
    while (cur().kind != LexKind::kRParen) {
      if (cur().kind == LexKind::kIdent) {
        if (!consts.empty()) return Err("position arguments must precede constants");
        vars.push_back(cur().text);
        Advance();
      } else if (cur().kind == LexKind::kInt) {
        consts.push_back(cur().value);
        Advance();
      } else {
        return Err("expected variable or integer argument");
      }
      if (cur().kind == LexKind::kComma) {
        Advance();
      } else if (cur().kind != LexKind::kRParen) {
        return Err("expected ',' or ')'");
      }
    }
    Advance();  // ')'
    FTS_RETURN_IF_ERROR(pred->ValidateSignature(vars.size(), consts.size()));
    return LangExprPtr(
        LangExpr::Pred(std::move(name), std::move(vars), std::move(consts)));
  }

  StatusOr<LangExprPtr> ParseDistCall() {
    auto parse_token = [this]() -> StatusOr<std::string> {
      if (cur().kind == LexKind::kString || cur().kind == LexKind::kIdent) {
        std::string t = cur().text;
        Advance();
        return t;
      }
      if (cur().kind == LexKind::kAny) {
        Advance();
        return std::string();  // empty = ANY
      }
      return StatusOr<std::string>(Err("expected token or ANY in dist()"));
    };
    FTS_ASSIGN_OR_RETURN(std::string t1, parse_token());
    FTS_RETURN_IF_ERROR(Expect(LexKind::kComma));
    FTS_ASSIGN_OR_RETURN(std::string t2, parse_token());
    FTS_RETURN_IF_ERROR(Expect(LexKind::kComma));
    if (cur().kind != LexKind::kInt) return Err("expected integer distance in dist()");
    const int64_t d = cur().value;
    Advance();
    FTS_RETURN_IF_ERROR(Expect(LexKind::kRParen));
    if (d < 0) return Status::InvalidArgument("dist() distance must be non-negative");
    return LangExprPtr(LangExpr::Dist(std::move(t1), std::move(t2), d));
  }

  std::vector<LexToken> tokens_;
  size_t pos_ = 0;
  const PredicateRegistry& registry_;
};

}  // namespace

StatusOr<LangExprPtr> ParseQuery(std::string_view query, SurfaceLanguage lang,
                                 const PredicateRegistry& registry) {
  FTS_ASSIGN_OR_RETURN(std::vector<LexToken> tokens, LexQuery(query));
  Parser parser(std::move(tokens), registry);
  FTS_ASSIGN_OR_RETURN(LangExprPtr expr, parser.Parse());
  FTS_RETURN_IF_ERROR(CheckInLanguage(expr, lang));
  return expr;
}

namespace {

Status CheckRec(const LangExprPtr& e, SurfaceLanguage lang, bool not_under_and) {
  switch (e->kind()) {
    case LangExpr::Kind::kToken:
      return Status::OK();
    case LangExpr::Kind::kAny:
      if (lang == SurfaceLanguage::kBoolNoNeg) {
        return Status::InvalidArgument("ANY is not available in BOOL-NONEG");
      }
      return Status::OK();
    case LangExpr::Kind::kVarHasToken:
    case LangExpr::Kind::kVarHasAny:
    case LangExpr::Kind::kSome:
    case LangExpr::Kind::kEvery:
    case LangExpr::Kind::kPred:
      if (lang != SurfaceLanguage::kComp) {
        return Status::InvalidArgument(
            std::string("position variables and predicates require COMP, not ") +
            SurfaceLanguageToString(lang));
      }
      if (e->kind() == LangExpr::Kind::kSome || e->kind() == LangExpr::Kind::kEvery) {
        return CheckRec(e->child(), lang, false);
      }
      return Status::OK();
    case LangExpr::Kind::kDist:
      if (lang != SurfaceLanguage::kDist && lang != SurfaceLanguage::kComp) {
        return Status::InvalidArgument("dist() requires the DIST or COMP language");
      }
      return Status::OK();
    case LangExpr::Kind::kNot:
      if (lang == SurfaceLanguage::kBoolNoNeg && !not_under_and) {
        return Status::InvalidArgument(
            "BOOL-NONEG only allows negation as 'Query AND NOT Query'");
      }
      return CheckRec(e->child(), lang, false);
    case LangExpr::Kind::kAnd:
      if (lang == SurfaceLanguage::kBoolNoNeg &&
          e->left()->kind() == LangExpr::Kind::kNot &&
          e->right()->kind() == LangExpr::Kind::kNot) {
        return Status::InvalidArgument(
            "BOOL-NONEG requires a positive conjunct beside NOT");
      }
      FTS_RETURN_IF_ERROR(CheckRec(e->left(), lang, true));
      return CheckRec(e->right(), lang, true);
    case LangExpr::Kind::kOr:
      FTS_RETURN_IF_ERROR(CheckRec(e->left(), lang, false));
      return CheckRec(e->right(), lang, false);
  }
  return Status::Internal("unreachable surface kind");
}

}  // namespace

Status CheckInLanguage(const LangExprPtr& expr, SurfaceLanguage lang) {
  if (!expr) return Status::InvalidArgument("null query");
  return CheckRec(expr, lang, false);
}

}  // namespace fts
