// Language classification: maps any parsed query to the cheapest class in
// the paper's complexity hierarchy (Figure 3) whose evaluation algorithm can
// run it:
//
//   BOOL-NONEG ⊂ BOOL ⊂ PPRED ⊂ NPRED ⊂ COMP
//
// The classifier operates on normalized surface trees (EVERY desugared,
// double negation removed). The router (eval/router.h) uses the result to
// dispatch to the matching engine.

#ifndef FTS_LANG_CLASSIFY_H_
#define FTS_LANG_CLASSIFY_H_

#include <set>
#include <string>

#include "lang/ast.h"
#include "predicates/predicate.h"

namespace fts {

/// Evaluation classes ordered by increasing query complexity.
enum class LanguageClass {
  kBoolNoNeg,  ///< merge of query-token lists only
  kBool,       ///< merges including IL_ANY complements
  kPpred,      ///< single-scan pipelined cursors, positive predicates
  kNpred,      ///< per-ordering pipelined scans, +negative predicates
  kComp,       ///< materialized algebra evaluation
};

const char* LanguageClassToString(LanguageClass cls);

/// Free (unbound) variable names of a surface expression.
std::set<std::string> FreeSurfaceVars(const LangExprPtr& e);

/// Classifies `query` (any COMP-language tree). The query is normalized
/// internally; predicate classes resolve against `registry`.
LanguageClass ClassifyQuery(const LangExprPtr& query,
                            const PredicateRegistry& registry =
                                PredicateRegistry::Default());

}  // namespace fts

#endif  // FTS_LANG_CLASSIFY_H_
