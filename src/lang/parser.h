// Recursive-descent parsers for the paper's query languages.
//
// Grammar (full COMP; the other languages are syntactic restrictions):
//
//   query   := or
//   or      := and (OR and)*
//   and     := unary (AND unary)*
//   unary   := NOT unary | SOME ident unary | EVERY ident unary | primary
//   primary := '(' query ')' | string | ANY
//            | ident HAS (string | ANY)
//            | ident '(' arg (',' arg)* ')'          (predicate / dist)
//            | ident                                 (bare token literal)
//   arg     := ident | int | string                  (string only in dist)
//
// Precedence: NOT/SOME/EVERY bind tighter than AND, AND tighter than OR,
// matching conventional Boolean query syntax. Bare identifiers that are not
// followed by HAS or '(' are accepted as token literals for convenience.

#ifndef FTS_LANG_PARSER_H_
#define FTS_LANG_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "lang/ast.h"
#include "predicates/predicate.h"

namespace fts {

/// The concrete query language a string claims to be written in.
enum class SurfaceLanguage {
  kBoolNoNeg,  ///< Section 5.3's BOOL-NONEG
  kBool,       ///< Section 4.1's BOOL
  kDist,       ///< Section 4.2's DIST
  kComp,       ///< Section 4.3's COMP
};

const char* SurfaceLanguageToString(SurfaceLanguage lang);

/// Parses `query` and verifies it stays within `lang`'s constructs.
/// Predicate names are validated against `registry` at parse time.
StatusOr<LangExprPtr> ParseQuery(std::string_view query, SurfaceLanguage lang,
                                 const PredicateRegistry& registry =
                                     PredicateRegistry::Default());

/// Returns OK iff `expr` uses only constructs available in `lang`
/// (e.g. a COMP tree with SOME is not in BOOL; NOT outside "AND NOT" is
/// not in BOOL-NONEG).
Status CheckInLanguage(const LangExprPtr& expr, SurfaceLanguage lang);

}  // namespace fts

#endif  // FTS_LANG_PARSER_H_
