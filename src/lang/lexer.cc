#include "lang/lexer.h"

#include <cctype>

namespace fts {

const char* LexKindToString(LexKind kind) {
  switch (kind) {
    case LexKind::kIdent: return "identifier";
    case LexKind::kString: return "string literal";
    case LexKind::kInt: return "integer";
    case LexKind::kLParen: return "'('";
    case LexKind::kRParen: return "')'";
    case LexKind::kComma: return "','";
    case LexKind::kNot: return "NOT";
    case LexKind::kAnd: return "AND";
    case LexKind::kOr: return "OR";
    case LexKind::kSome: return "SOME";
    case LexKind::kEvery: return "EVERY";
    case LexKind::kAny: return "ANY";
    case LexKind::kHas: return "HAS";
    case LexKind::kEnd: return "end of input";
  }
  return "?";
}

namespace {

std::string Upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

StatusOr<std::vector<LexToken>> LexQuery(std::string_view query) {
  std::vector<LexToken> out;
  size_t i = 0;
  const size_t n = query.size();
  while (i < n) {
    const char c = query[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (c == '(') {
      out.push_back({LexKind::kLParen, "(", 0, start});
      ++i;
    } else if (c == ')') {
      out.push_back({LexKind::kRParen, ")", 0, start});
      ++i;
    } else if (c == ',') {
      out.push_back({LexKind::kComma, ",", 0, start});
      ++i;
    } else if (c == '\'') {
      ++i;
      std::string text;
      while (i < n && query[i] != '\'') text.push_back(query[i++]);
      if (i >= n) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(start));
      }
      ++i;  // closing quote
      out.push_back({LexKind::kString, std::move(text), 0, start});
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(query[i + 1])))) {
      size_t j = i + (c == '-' ? 1 : 0);
      while (j < n && std::isdigit(static_cast<unsigned char>(query[j]))) ++j;
      LexToken t{LexKind::kInt, std::string(query.substr(i, j - i)), 0, start};
      t.value = std::stoll(t.text);
      out.push_back(std::move(t));
      i = j;
    } else if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(query[j])) ++j;
      std::string text(query.substr(i, j - i));
      const std::string upper = Upper(text);
      LexKind kind = LexKind::kIdent;
      if (upper == "NOT") kind = LexKind::kNot;
      else if (upper == "AND") kind = LexKind::kAnd;
      else if (upper == "OR") kind = LexKind::kOr;
      else if (upper == "SOME") kind = LexKind::kSome;
      else if (upper == "EVERY") kind = LexKind::kEvery;
      else if (upper == "ANY") kind = LexKind::kAny;
      else if (upper == "HAS") kind = LexKind::kHas;
      out.push_back({kind, std::move(text), 0, start});
      i = j;
    } else {
      return Status::InvalidArgument("unexpected character '" + std::string(1, c) +
                                     "' at offset " + std::to_string(start));
    }
  }
  out.push_back({LexKind::kEnd, "", 0, n});
  return out;
}

}  // namespace fts
