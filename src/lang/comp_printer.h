// The constructive content of Theorem 6: every calculus query can be
// expressed in COMP. FormatCalcAsComp renders an FTC formula as COMP
// syntax that parses and translates back to an equivalent query — the
// completeness proof, executable.

#ifndef FTS_LANG_COMP_PRINTER_H_
#define FTS_LANG_COMP_PRINTER_H_

#include <string>

#include "calculus/ftc.h"
#include "common/status.h"

namespace fts {

/// Renders a closed calculus query in COMP syntax, following the Theorem 6
/// construction:
///
///   hasPos(n, v)          ->  v HAS ANY
///   hasToken(v, t)        ->  v HAS 't'
///   pred(v..., c...)      ->  pred(v..., c...)
///   ¬e / e1∧e2 / e1∨e2    ->  NOT / AND / OR
///   ∃v(hasPos ∧ e)        ->  SOME v (e)
///   ∀v(hasPos ⇒ e)        ->  EVERY v (e)
///
/// Variables print as p<id>. Fails on open queries.
StatusOr<std::string> FormatCalcAsComp(const CalcQuery& query);

/// Formula-level rendering (free variables allowed); exposed for tests.
std::string FormatCalcExprAsComp(const CalcExprPtr& expr);

}  // namespace fts

#endif  // FTS_LANG_COMP_PRINTER_H_
