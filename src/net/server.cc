#include "net/server.h"

#include <cstring>

#include "index/pair_index.h"
#include "index/shared_block_cache.h"

namespace fts {
namespace net {

namespace {

/// Single segment, no tombstones: Create skips the stats pass entirely and
/// cannot fail, so the .value() below is safe.
std::shared_ptr<const IndexSnapshot> InitialSnapshot(
    std::shared_ptr<const InvertedIndex> index) {
  return IndexSnapshot::Create({std::move(index)}).value();
}

uint32_t ReadLe32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

FtsServer::FtsServer(std::shared_ptr<const InvertedIndex> index,
                     Options options)
    : options_(std::move(options)),
      index_(std::move(index)),
      source_(InitialSnapshot(index_)),
      service_(std::make_unique<SearchService>(&source_, options_.service)),
      admission_(std::make_unique<AdmissionController>(options_.admission)) {}

FtsServer::~FtsServer() { Stop(); }

Status FtsServer::Start() {
  FTS_ASSIGN_OR_RETURN(
      Socket listener,
      ListenTcp(options_.port, &port_, options_.loopback_only));
  listener_ = std::move(listener);
  stop_.store(false);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void FtsServer::Stop() {
  stop_.store(true);
  if (acceptor_.joinable()) {
    listener_.Shutdown();
    acceptor_.join();
  }
  {
    // Wake every blocked reader (EOF) and writer-side peer.
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (std::unique_ptr<Connection>& c : conns_) c->sock.Shutdown();
  }
  // Readers exit on EOF; writers drain their FIFOs — pending search
  // futures resolve because the service workers are still running here.
  ReapConnections(/*all=*/true);
  service_->Shutdown();
  listener_.Close();
}

void FtsServer::AcceptLoop() {
  while (!stop_.load()) {
    StatusOr<Socket> accepted = AcceptWithTimeout(listener_, kNoTimeout);
    ReapConnections(/*all=*/false);
    if (!accepted.ok()) {
      // NotFound is the bounded poll tick elapsing; anything else is a
      // transient accept failure (or the listener dying under Stop) —
      // either way the loop just re-checks the stop flag.
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->sock = std::move(accepted).value();
    Connection* c = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++accepted_connections_;
    }
    c->reader = std::thread([this, c] { ReaderLoop(c); });
    c->writer = std::thread([this, c] { WriterLoop(c); });
  }
}

void FtsServer::ReapConnections(bool all) {
  std::list<std::unique_ptr<Connection>> dead;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (all || (*it)->finished.load()) {
        dead.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (std::unique_ptr<Connection>& c : dead) {
    if (c->reader.joinable()) c->reader.join();
    if (c->writer.joinable()) c->writer.join();
  }
}

void FtsServer::ReaderLoop(Connection* conn) {
  bool poisoned = false;
  // The first four bytes decide the dialect: an HTTP verb serves one
  // plain-text operational response; anything else is a binary frame's
  // length prefix.
  char head[4];
  if (ReadFull(conn->sock, head, sizeof(head)).ok()) {
    if (std::memcmp(head, "GET ", 4) == 0 || std::memcmp(head, "HEAD", 4) == 0) {
      HandleHttp(conn, head);
    } else {
      bool first = true;
      std::string payload;
      while (true) {
        Status read;
        if (first) {
          first = false;
          const uint32_t len = ReadLe32(head);
          if (len > options_.max_frame_bytes) {
            read = Status::InvalidArgument("net: oversized first frame");
          } else {
            payload.assign(len, '\0');
            if (len > 0) read = ReadFull(conn->sock, payload.data(), len);
          }
        } else {
          read = ReadFrame(conn->sock, &payload, options_.max_frame_bytes);
        }
        if (!read.ok()) {
          // InvalidArgument = oversized declared length: the stream is
          // poisoned. Unavailable = clean disconnect. IOError = truncated
          // frame. Only the first is the peer's protocol violation.
          poisoned = read.code() == StatusCode::kInvalidArgument;
          break;
        }
        if (!HandleFrame(conn, payload)) {
          poisoned = true;
          break;
        }
      }
    }
  }
  if (poisoned) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++protocol_errors_;
    }
    conn->sock.Shutdown();
  }
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->reader_done = true;
  }
  conn->cv.notify_all();
}

void FtsServer::WriterLoop(Connection* conn) {
  while (true) {
    Outgoing out;
    {
      std::unique_lock<std::mutex> lock(conn->mu);
      conn->cv.wait(lock,
                    [conn] { return conn->reader_done || !conn->out.empty(); });
      if (conn->out.empty()) break;  // reader finished and FIFO drained
      out = std::move(conn->out.front());
      conn->out.pop_front();
    }
    std::string frame;
    if (out.pending.has_value()) {
      // FIFO wait: responses leave in request order even though the pool
      // may complete them out of order.
      StatusOr<RoutedResult> result = out.pending->get();
      SearchResponse resp;
      resp.request_id = out.request_id;
      if (result.ok()) {
        resp.language_class = result->language_class;
        resp.engine = result->engine;
        resp.nodes.assign(result->result.nodes.begin(),
                          result->result.nodes.end());
        resp.scores = std::move(result->result.scores);
        resp.counters = result->result.counters;
      } else {
        resp.status = result.status();
      }
      frame = EncodeSearchResponse(resp);
    } else {
      frame = std::move(out.ready);
    }
    // A failed write means the peer is gone; keep looping anyway so every
    // pending future is consumed (their results are simply dropped).
    (void)WriteAll(conn->sock, frame);
  }
  conn->sock.Shutdown();
  conn->finished.store(true);
}

void FtsServer::Push(Connection* conn, Outgoing out) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->out.push_back(std::move(out));
  }
  conn->cv.notify_all();
}

bool FtsServer::HandleFrame(Connection* conn, const std::string& payload) {
  uint8_t type = 0;
  uint64_t request_id = 0;
  if (!PeekPrologue(payload, &type, &request_id).ok()) return false;
  switch (static_cast<MessageType>(type)) {
    case MessageType::kSearchRequest: {
      SearchRequest req;
      if (!DecodeSearchRequest(payload, &req).ok()) return false;
      HandleSearch(conn, req);
      return true;
    }
    case MessageType::kPingRequest: {
      PingRequest req;
      if (!DecodePingRequest(payload, &req).ok()) return false;
      const std::shared_ptr<const IndexSnapshot> snap = source_.snapshot();
      PingResponse resp;
      resp.request_id = req.request_id;
      resp.server_name = options_.name;
      resp.num_nodes = snap->total_nodes();
      resp.generation = snap->generation();
      Outgoing out;
      out.ready = EncodePingResponse(resp);
      Push(conn, std::move(out));
      return true;
    }
    case MessageType::kStatsRequest: {
      StatsRequest req;
      if (!DecodeStatsRequest(payload, &req).ok()) return false;
      const std::shared_ptr<const IndexSnapshot> snap = source_.snapshot();
      StatsResponse resp;
      resp.request_id = req.request_id;
      resp.num_nodes = snap->total_nodes();
      // Local df by token text (summed across segments, though a shard
      // server holds exactly one): the router's input for the global
      // aggregate.
      std::unordered_map<std::string, uint32_t> df;
      for (const SegmentView& seg : snap->segments()) {
        const InvertedIndex& idx = *seg.index;
        const TokenId vocab = static_cast<TokenId>(idx.vocabulary_size());
        for (TokenId t = 0; t < vocab; ++t) {
          const uint32_t d = idx.df(t);
          if (d != 0) df[idx.token_text(t)] += d;
        }
        // Pair-list dfs travel in the same exchange under their
        // collision-proof StatsKey; the router sums them like token dfs
        // and each shard's multi-index planner reads the global values.
        if (const PairIndex* pair = idx.pair_index()) {
          for (size_t k = 0; k < pair->num_keys(); ++k) {
            const PairTermKey& key = pair->key(k);
            df[PairIndex::StatsKey(idx.token_text(key.first),
                                   idx.token_text(key.second))] +=
                static_cast<uint32_t>(pair->list(k).num_entries());
          }
        }
      }
      resp.df_by_text.assign(df.begin(), df.end());
      Outgoing out;
      out.ready = EncodeStatsResponse(resp);
      Push(conn, std::move(out));
      return true;
    }
    case MessageType::kSetGlobalStatsRequest: {
      SetGlobalStatsRequest req;
      if (!DecodeSetGlobalStatsRequest(payload, &req).ok()) return false;
      std::unordered_map<std::string, uint32_t> df;
      df.reserve(req.df_by_text.size());
      for (const auto& [text, d] : req.df_by_text) df[text] += d;
      SetGlobalStatsResponse resp;
      resp.request_id = req.request_id;
      StatusOr<std::shared_ptr<const IndexSnapshot>> snap =
          IndexSnapshot::CreateSharded(index_, req.global_live_nodes,
                                       std::move(df),
                                       generation_.fetch_add(1) + 1);
      if (snap.ok()) {
        source_.Publish(std::move(snap).value());
      } else {
        resp.status = snap.status();
      }
      Outgoing out;
      out.ready = EncodeSetGlobalStatsResponse(resp);
      Push(conn, std::move(out));
      return true;
    }
    case MessageType::kMetricsRequest: {
      MetricsRequest req;
      if (!DecodeMetricsRequest(payload, &req).ok()) return false;
      MetricsResponse resp;
      resp.request_id = req.request_id;
      resp.text = MetricsText();
      Outgoing out;
      out.ready = EncodeMetricsResponse(resp);
      Push(conn, std::move(out));
      return true;
    }
    default:
      // A type this server cannot serve: there is no response layout to
      // answer with, so the stream is dead weight — drop the connection.
      return false;
  }
}

void FtsServer::HandleSearch(Connection* conn, const SearchRequest& req) {
  Outgoing out;
  out.request_id = req.request_id;
  if (options_.admission.enabled) {
    // Cost the query before it touches the queue; under pressure the
    // expensive ones are answered Unavailable right here.
    const std::shared_ptr<const IndexSnapshot> snap = source_.snapshot();
    StatusOr<AdmissionDecision> verdict =
        admission_->Assess(req.query, *snap, service_->queue_depth(),
                           service_->queue_capacity());
    if (!verdict.ok()) {
      // Parse failure — the same error the worker would produce, without
      // spending a queue slot on it.
      SearchResponse resp;
      resp.request_id = req.request_id;
      resp.status = verdict.status();
      out.ready = EncodeSearchResponse(resp);
      Push(conn, std::move(out));
      return;
    }
    if (!verdict->admit) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++shed_queries_;
      }
      SearchResponse resp;
      resp.request_id = req.request_id;
      resp.status = Status::Unavailable(
          "shed by admission control (estimated cost " +
          std::to_string(verdict->cost) + ")");
      out.ready = EncodeSearchResponse(resp);
      Push(conn, std::move(out));
      return;
    }
  }
  SearchService::RequestOptions opts;
  opts.top_k = req.top_k;
  opts.mode = ToCursorMode(req.mode);
  if (req.deadline_us > 0) {
    opts.timeout = std::chrono::microseconds(req.deadline_us);
  }
  // Submit blocks under back-pressure, which throttles this connection's
  // reader — intake slows instead of the queue growing without bound.
  out.pending = service_->Submit(req.query, opts);
  Push(conn, std::move(out));
}

void FtsServer::HandleHttp(Connection* conn, const char prefix[4]) {
  // Consume the request line (the four verb bytes are already read);
  // headers and bodies are ignored — these are GET/HEAD endpoints.
  std::string line(prefix, 4);
  while (line.size() < 4096 && line.back() != '\n') {
    char ch;
    if (!ReadFull(conn->sock, &ch, 1, std::chrono::milliseconds(2000)).ok()) {
      return;
    }
    line.push_back(ch);
  }
  const size_t path_begin = line.find(' ');
  const size_t path_end =
      path_begin == std::string::npos ? std::string::npos
                                      : line.find(' ', path_begin + 1);
  std::string path = path_end == std::string::npos
                         ? std::string()
                         : line.substr(path_begin + 1,
                                       path_end - path_begin - 1);
  std::string body;
  const char* status = "200 OK";
  if (path == "/metrics") {
    body = MetricsText();
  } else if (path == "/healthz" || path == "/") {
    body = "ok\n";
  } else {
    status = "404 Not Found";
    body = "not found\n";
  }
  std::string resp = std::string("HTTP/1.0 ") + status +
                     "\r\nContent-Type: text/plain; charset=utf-8"
                     "\r\nContent-Length: " +
                     std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  if (std::memcmp(prefix, "HEAD", 4) != 0) resp += body;
  (void)WriteAll(conn->sock, resp);
}

std::string FtsServer::MetricsText() const {
  const ServiceMetricsSnapshot m = service_->metrics();
  const std::shared_ptr<const IndexSnapshot> snap = source_.snapshot();
  std::string out = "# fts server \"" + options_.name + "\"\n";
  const auto line = [&out](std::string_view key, uint64_t value) {
    out += key;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  };
  line("fts_up", 1);
  line("fts_generation", snap->generation());
  line("fts_total_nodes", snap->total_nodes());
  line("fts_live_nodes", snap->live_nodes());
  line("fts_workers", service_->num_workers());
  line("fts_queue_depth", service_->queue_depth());
  line("fts_queue_capacity", service_->queue_capacity());
  line("fts_queries_submitted", m.submitted);
  line("fts_queries_completed", m.completed);
  line("fts_queries_failed", m.failed);
  line("fts_queries_rejected", m.rejected);
  line("fts_peak_queue_depth", m.peak_queue_depth);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    line("fts_queries_shed", shed_queries_);
    line("fts_connections_accepted", accepted_connections_);
    line("fts_protocol_errors", protocol_errors_);
  }
  const EvalCounters& c = m.totals;
  line("fts_eval_entries_scanned", c.entries_scanned);
  line("fts_eval_positions_scanned", c.positions_scanned);
  line("fts_eval_tuples_materialized", c.tuples_materialized);
  line("fts_eval_predicate_evals", c.predicate_evals);
  line("fts_eval_cursor_ops", c.cursor_ops);
  line("fts_eval_orderings_run", c.orderings_run);
  line("fts_eval_skip_checks", c.skip_checks);
  line("fts_eval_blocks_decoded", c.blocks_decoded);
  line("fts_eval_entries_decoded", c.entries_decoded);
  line("fts_eval_positions_decoded", c.positions_decoded);
  line("fts_eval_blocks_bulk_decoded", c.blocks_bulk_decoded);
  line("fts_eval_cache_hits", c.cache_hits);
  line("fts_eval_cache_misses", c.cache_misses);
  line("fts_eval_shared_cache_hits", c.shared_cache_hits);
  line("fts_eval_shared_cache_misses", c.shared_cache_misses);
  line("fts_eval_first_touch_validations", c.first_touch_validations);
  line("fts_eval_blocks_skipped_by_score", c.blocks_skipped_by_score);
  line("fts_eval_simd_groups_decoded", c.simd_groups_decoded);
  line("fts_eval_bitset_blocks_intersected", c.bitset_blocks_intersected);
  line("fts_eval_pair_seeks", c.pair_seeks);
  line("fts_eval_pair_entries_decoded", c.pair_entries_decoded);
  if (const SharedBlockCache* l2 = service_->shared_cache()) {
    const SharedBlockCache::Stats s = l2->stats();
    line("fts_l2_cache_hits", s.hits);
    line("fts_l2_cache_misses", s.misses);
    line("fts_l2_cache_evictions", s.evictions);
    line("fts_l2_cache_resident_blocks", s.resident_blocks);
    line("fts_l2_cache_resident_bytes", s.resident_bytes);
    for (size_t i = 0; i < s.shards.size(); ++i) {
      const std::string suffix = "{shard=\"" + std::to_string(i) + "\"}";
      line("fts_l2_cache_shard_keys" + suffix, s.shards[i].keys);
      line("fts_l2_cache_shard_bytes" + suffix, s.shards[i].bytes);
    }
  }
  return out;
}

}  // namespace net
}  // namespace fts
