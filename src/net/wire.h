// Wire protocol of the network serving layer (docs/serving.md).
//
// Framing: every message is one length-prefixed frame —
//
//   [u32 LE payload_length][payload bytes]
//
// with payload_length bounded by kMaxFrameBytes; a peer that reads a
// larger declared length must treat the stream as poisoned and close the
// connection (the length cannot be trusted, so no resynchronization is
// possible). Every payload starts with a fixed two-byte prologue:
//
//   offset 0  u8 protocol version (kProtocolVersion)
//   offset 1  u8 message type (MessageType)
//   offset 2  u64 LE request id, echoed verbatim in the response
//
// followed by the type-specific body. All integers are little-endian and
// fixed-width; strings are a u32 byte length followed by raw bytes; score
// doubles travel as their IEEE-754 bit patterns in u64, so a score is
// bit-identical after a round trip. EvalCounters are a u32 field count
// followed by that many u64 values in struct declaration order — a decoder
// reads min(sent, known) fields and skips the rest, so adding a counter is
// a backward-compatible protocol change (versioning rules in
// docs/serving.md).
//
// Decoding never trusts the peer: every read is bounds-checked against the
// frame, and any violation (truncated field, length overrunning the
// payload, unknown protocol version) fails with InvalidArgument — the
// server answers what it can attribute to a request id and closes the
// connection otherwise.

#ifndef FTS_NET_WIRE_H_
#define FTS_NET_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "eval/engine.h"
#include "lang/classify.h"

namespace fts {
namespace net {

/// Protocol version spoken by this library. A peer receiving a frame with
/// a different version responds with an error status (requests) or fails
/// the call (responses); it never guesses at the body layout.
inline constexpr uint8_t kProtocolVersion = 1;

/// Hard bound on one frame's payload. Chosen to admit full results over
/// the benchmark corpora and full dictionary stats exchanges with two
/// orders of magnitude of headroom, while bounding what one malicious or
/// corrupt length prefix can make a peer allocate.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// Bytes of the length prefix that fronts every frame.
inline constexpr size_t kFrameHeaderBytes = 4;

enum class MessageType : uint8_t {
  kSearchRequest = 1,
  kSearchResponse = 2,
  kPingRequest = 3,
  kPingResponse = 4,
  kStatsRequest = 5,
  kStatsResponse = 6,
  kSetGlobalStatsRequest = 7,
  kSetGlobalStatsResponse = 8,
  kMetricsRequest = 9,
  kMetricsResponse = 10,
};

/// Node ids on the wire are 64-bit: a scatter-gather router rebases each
/// shard's 32-bit local ids into a global space that outgrows NodeId.
using WireNodeId = uint64_t;

/// How a search request selects the cursor access mode. kDefault defers
/// to the serving process's configured mode.
enum class WireCursorMode : uint8_t {
  kDefault = 0,
  kSequential = 1,
  kSeek = 2,
  kAdaptive = 3,
};

struct SearchRequest {
  uint64_t request_id = 0;
  /// Ranked retrieval: return only the top_k best (0 = full results).
  uint32_t top_k = 0;
  WireCursorMode mode = WireCursorMode::kDefault;
  /// Per-request deadline in microseconds from receipt; 0 = none.
  uint64_t deadline_us = 0;
  std::string query;
};

struct SearchResponse {
  uint64_t request_id = 0;
  /// Evaluation outcome. On error the result fields below are empty.
  Status status;
  /// LanguageClass of the query as classified by the server.
  LanguageClass language_class = LanguageClass::kComp;
  /// Engine that served the query ("BOOL"/"PPRED"/"NPRED"/"COMP"/"NONE").
  std::string engine;
  std::vector<WireNodeId> nodes;
  /// Parallel to nodes; empty when the server scores with kNone.
  std::vector<double> scores;
  EvalCounters counters;
};

struct PingRequest {
  uint64_t request_id = 0;
};

struct PingResponse {
  uint64_t request_id = 0;
  std::string server_name;
  /// Total nodes in the served snapshot (the id space a router must
  /// reserve for this shard).
  uint64_t num_nodes = 0;
  uint64_t generation = 0;
};

struct StatsRequest {
  uint64_t request_id = 0;
};

/// A shard's local corpus statistics, gathered by the router to compute
/// the global scoring inputs (docs/serving.md, "Exact scoring across
/// shards").
struct StatsResponse {
  uint64_t request_id = 0;
  uint64_t num_nodes = 0;
  /// (token text, local document frequency) for every dictionary token.
  std::vector<std::pair<std::string, uint32_t>> df_by_text;
};

/// Global scoring inputs pushed back to each shard: the sum of every
/// shard's StatsResponse. The shard rebuilds its snapshot with these via
/// IndexSnapshot::CreateSharded, after which its scores are bit-identical
/// to a single-index build of the full corpus.
struct SetGlobalStatsRequest {
  uint64_t request_id = 0;
  uint64_t global_live_nodes = 0;
  std::vector<std::pair<std::string, uint32_t>> df_by_text;
};

struct SetGlobalStatsResponse {
  uint64_t request_id = 0;
  Status status;
};

struct MetricsRequest {
  uint64_t request_id = 0;
};

struct MetricsResponse {
  uint64_t request_id = 0;
  /// The same plain-text body the HTTP /metrics endpoint serves.
  std::string text;
};

// --- primitive append helpers (always succeed; buffer grows) ------------

void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutString(std::string* out, std::string_view s);
void PutDouble(std::string* out, double v);
void PutCounters(std::string* out, const EvalCounters& c);

// --- bounds-checked reader ----------------------------------------------

/// Sequential bounds-checked decoder over one frame payload. Every Get*
/// returns false (and leaves the output untouched) on a truncated or
/// overrunning field; callers surface that as InvalidArgument.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* v);
  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetString(std::string* v);
  bool GetDouble(double* v);
  bool GetCounters(EvalCounters* c);

  /// True when the whole payload has been consumed — messages must not
  /// carry trailing garbage.
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// --- message encode/decode ----------------------------------------------
//
// Encode* produce a complete frame (length prefix included), ready to
// write to a socket. Decode* take one frame's *payload* (length prefix
// already stripped by the transport) and fail with InvalidArgument on any
// malformed field, wrong type byte, or unsupported protocol version.

std::string EncodeSearchRequest(const SearchRequest& req);
std::string EncodeSearchResponse(const SearchResponse& resp);
std::string EncodePingRequest(const PingRequest& req);
std::string EncodePingResponse(const PingResponse& resp);
std::string EncodeStatsRequest(const StatsRequest& req);
std::string EncodeStatsResponse(const StatsResponse& resp);
std::string EncodeSetGlobalStatsRequest(const SetGlobalStatsRequest& req);
std::string EncodeSetGlobalStatsResponse(const SetGlobalStatsResponse& resp);
std::string EncodeMetricsRequest(const MetricsRequest& req);
std::string EncodeMetricsResponse(const MetricsResponse& resp);

/// Peeks the prologue of a frame payload without consuming the body.
/// Fails on unknown protocol versions; unknown type bytes are returned
/// as-is (the dispatcher decides whether it can serve them).
Status PeekPrologue(std::string_view payload, uint8_t* type,
                    uint64_t* request_id);

Status DecodeSearchRequest(std::string_view payload, SearchRequest* out);
Status DecodeSearchResponse(std::string_view payload, SearchResponse* out);
Status DecodePingRequest(std::string_view payload, PingRequest* out);
Status DecodePingResponse(std::string_view payload, PingResponse* out);
Status DecodeStatsRequest(std::string_view payload, StatsRequest* out);
Status DecodeStatsResponse(std::string_view payload, StatsResponse* out);
Status DecodeSetGlobalStatsRequest(std::string_view payload,
                                   SetGlobalStatsRequest* out);
Status DecodeSetGlobalStatsResponse(std::string_view payload,
                                    SetGlobalStatsResponse* out);
Status DecodeMetricsRequest(std::string_view payload, MetricsRequest* out);
Status DecodeMetricsResponse(std::string_view payload, MetricsResponse* out);

/// Maps a wire cursor-mode byte onto the engine enum; nullopt for
/// kDefault (use the serving process's configured mode).
std::optional<CursorMode> ToCursorMode(WireCursorMode mode);

}  // namespace net
}  // namespace fts

#endif  // FTS_NET_WIRE_H_
