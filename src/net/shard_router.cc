#include "net/shard_router.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

namespace fts {
namespace net {

ShardRouter::ShardRouter(Options options) : options_(std::move(options)) {}

Status ShardRouter::Connect() {
  clients_.clear();
  total_nodes_ = 0;
  std::vector<ShardHealth> health(options_.shards.size());
  for (size_t i = 0; i < options_.shards.size(); ++i) {
    const ShardAddress& addr = options_.shards[i];
    FtsClient::Options copts;
    copts.host = addr.host;
    copts.port = addr.port;
    copts.connect_timeout = options_.connect_timeout;
    copts.call_timeout = options_.call_timeout;
    auto client = std::make_unique<FtsClient>(copts);
    StatusOr<PingResponse> ping = client->Ping();
    if (!ping.ok()) {
      return Status(ping.status().code(),
                    "shard " + std::to_string(i) + " (" + addr.host + ":" +
                        std::to_string(addr.port) +
                        "): " + ping.status().message());
    }
    ShardHealth& h = health[i];
    h.address = addr;
    h.name = ping->server_name;
    h.alive = true;
    h.num_nodes = ping->num_nodes;
    h.generation = ping->generation;
    // Prefix-sum bases: shard i's local node n is global node base + n —
    // the segment id-base scheme, across processes.
    h.base = total_nodes_;
    total_nodes_ += ping->num_nodes;
    clients_.push_back(std::move(client));
  }
  std::lock_guard<std::mutex> lock(health_mu_);
  health_ = std::move(health);
  return Status::OK();
}

Status ShardRouter::ExchangeGlobalStats() {
  if (clients_.empty()) return Status::Unavailable("router not connected");
  // Gather: every shard's local df table and node count.
  std::unordered_map<std::string, uint32_t> df;
  uint64_t global_live_nodes = 0;
  for (size_t i = 0; i < clients_.size(); ++i) {
    StatusOr<StatsResponse> stats = clients_[i]->Stats();
    if (!stats.ok()) {
      return Status(stats.status().code(), "shard " + std::to_string(i) +
                                               " stats: " +
                                               stats.status().message());
    }
    global_live_nodes += stats->num_nodes;
    for (const auto& [text, d] : stats->df_by_text) df[text] += d;
  }
  // Scatter: the summed table back to every shard, which rebuilds its
  // snapshot under corpus-global idf (IndexSnapshot::CreateSharded).
  std::vector<std::pair<std::string, uint32_t>> table(df.begin(), df.end());
  for (size_t i = 0; i < clients_.size(); ++i) {
    StatusOr<SetGlobalStatsResponse> resp =
        clients_[i]->SetGlobalStats(global_live_nodes, table);
    const Status s = resp.ok() ? resp->status : resp.status();
    if (!s.ok()) {
      return Status(s.code(), "shard " + std::to_string(i) +
                                  " set-global-stats: " + s.message());
    }
  }
  return Status::OK();
}

StatusOr<SearchResponse> ShardRouter::Search(std::string_view query,
                                             uint32_t top_k,
                                             WireCursorMode mode,
                                             uint64_t deadline_us) {
  if (clients_.empty()) return Status::Unavailable("router not connected");
  // Scatter: the same request to every shard, pipelined — responses are
  // matched by id, so the fan-out runs concurrently over N connections.
  std::vector<std::future<StatusOr<SearchResponse>>> futures;
  futures.reserve(clients_.size());
  for (std::unique_ptr<FtsClient>& client : clients_) {
    SearchRequest req;
    req.query = std::string(query);
    req.top_k = top_k;
    req.mode = mode;
    req.deadline_us = deadline_us;
    futures.push_back(client->SearchAsync(std::move(req)));
  }
  // Gather, draining every future even after a failure (abandoning one
  // would leak an in-flight slot for the connection's lifetime).
  std::vector<SearchResponse> parts(clients_.size());
  Status failure;
  for (size_t i = 0; i < futures.size(); ++i) {
    StatusOr<SearchResponse> part = futures[i].get();
    const Status s = part.ok() ? part->status : part.status();
    if (!s.ok()) {
      if (failure.ok()) {
        failure = Status(s.code(),
                         "shard " + std::to_string(i) + ": " + s.message());
      }
      if (!part.ok()) {
        std::lock_guard<std::mutex> lock(health_mu_);
        if (i < health_.size()) health_[i].alive = false;
      }
      continue;
    }
    parts[i] = std::move(part).value();
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++queries_routed_;
    if (!failure.ok()) ++queries_failed_;
  }
  // All shards must answer: a partial merge would silently drop a doc-id
  // range, violating the bit-identical contract.
  FTS_RETURN_IF_ERROR(failure);

  SearchResponse out;
  out.language_class = parts[0].language_class;
  out.engine = parts[0].engine;
  bool scored = false;
  for (const SearchResponse& p : parts) {
    out.counters.MergeFrom(p.counters);
    if (!p.scores.empty()) scored = true;
  }
  for (const SearchResponse& p : parts) {
    if (!p.nodes.empty() && p.scores.empty() && scored) {
      return Status::Internal(
          "inconsistent shard configuration: mixed scored and unscored "
          "responses");
    }
  }

  std::vector<ShardHealth> bases = health();
  if (scored && top_k > 0) {
    // Global top-k from the union of per-shard top-k's, under the same
    // total order (score desc, id asc) TopKAccumulator ranks by.
    struct Hit {
      double score;
      WireNodeId id;
    };
    std::vector<Hit> hits;
    for (size_t i = 0; i < parts.size(); ++i) {
      for (size_t j = 0; j < parts[i].nodes.size(); ++j) {
        hits.push_back(Hit{parts[i].scores[j], bases[i].base + parts[i].nodes[j]});
      }
    }
    std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.id < b.id;
    });
    if (hits.size() > top_k) hits.resize(top_k);
    out.nodes.reserve(hits.size());
    out.scores.reserve(hits.size());
    for (const Hit& h : hits) {
      out.nodes.push_back(h.id);
      out.scores.push_back(h.score);
    }
  } else {
    // Concatenate in shard order: per-shard ascending plus increasing
    // disjoint bases = globally ascending.
    for (size_t i = 0; i < parts.size(); ++i) {
      for (const WireNodeId n : parts[i].nodes) {
        out.nodes.push_back(bases[i].base + n);
      }
      out.scores.insert(out.scores.end(), parts[i].scores.begin(),
                        parts[i].scores.end());
    }
    if (top_k > 0 && out.nodes.size() > top_k) {
      // Unscored top-k ranks by the id tie-break alone, so the global
      // first k is the first k of the concatenation.
      out.nodes.resize(top_k);
      if (!out.scores.empty()) out.scores.resize(top_k);
    }
  }
  return out;
}

std::vector<ShardHealth> ShardRouter::Probe() {
  std::vector<ShardHealth> health = this->health();
  for (size_t i = 0; i < clients_.size() && i < health.size(); ++i) {
    StatusOr<PingResponse> ping = clients_[i]->Ping();
    health[i].alive = ping.ok();
    if (ping.ok()) {
      health[i].name = ping->server_name;
      health[i].num_nodes = ping->num_nodes;
      health[i].generation = ping->generation;
    }
  }
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    health_ = health;
  }
  return health;
}

std::vector<ShardHealth> ShardRouter::health() const {
  std::lock_guard<std::mutex> lock(health_mu_);
  return health_;
}

std::string ShardRouter::MetricsText() const {
  std::string out = "# fts router over " + std::to_string(clients_.size()) +
                    " shard(s)\n";
  const auto line = [&out](std::string_view key, uint64_t value) {
    out += key;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  };
  line("fts_up", 1);
  line("fts_router_shards", clients_.size());
  line("fts_router_total_nodes", total_nodes_);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    line("fts_router_queries_routed", queries_routed_);
    line("fts_router_queries_failed", queries_failed_);
  }
  for (const ShardHealth& h : health()) {
    const std::string label = "{shard=\"" + h.name + "\",addr=\"" +
                              h.address.host + ":" +
                              std::to_string(h.address.port) + "\"}";
    line("fts_shard_alive" + label, h.alive ? 1 : 0);
    line("fts_shard_nodes" + label, h.num_nodes);
    line("fts_shard_base" + label, h.base);
    line("fts_shard_generation" + label, h.generation);
  }
  return out;
}

// --- RouterServer --------------------------------------------------------

RouterServer::RouterServer(ShardRouter* router, Options options)
    : options_(std::move(options)), router_(router) {}

RouterServer::~RouterServer() { Stop(); }

Status RouterServer::Start() {
  FTS_ASSIGN_OR_RETURN(
      Socket listener,
      ListenTcp(options_.port, &port_, options_.loopback_only));
  listener_ = std::move(listener);
  stop_.store(false);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void RouterServer::Stop() {
  stop_.store(true);
  if (acceptor_.joinable()) {
    listener_.Shutdown();
    acceptor_.join();
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (std::unique_ptr<Connection>& c : conns_) c->sock.Shutdown();
  }
  ReapConnections(/*all=*/true);
  listener_.Close();
}

void RouterServer::AcceptLoop() {
  while (!stop_.load()) {
    StatusOr<Socket> accepted = AcceptWithTimeout(listener_, kNoTimeout);
    ReapConnections(/*all=*/false);
    if (!accepted.ok()) continue;  // poll tick or transient failure
    auto conn = std::make_unique<Connection>();
    conn->sock = std::move(accepted).value();
    Connection* c = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    c->thread = std::thread([this, c] { ServeConnection(c); });
  }
}

void RouterServer::ReapConnections(bool all) {
  std::list<std::unique_ptr<Connection>> dead;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (all || (*it)->finished.load()) {
        dead.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (std::unique_ptr<Connection>& c : dead) {
    if (c->thread.joinable()) c->thread.join();
  }
}

void RouterServer::ServeConnection(Connection* conn) {
  char head[4];
  if (ReadFull(conn->sock, head, sizeof(head)).ok()) {
    if (std::memcmp(head, "GET ", 4) == 0 ||
        std::memcmp(head, "HEAD", 4) == 0) {
      ServeHttp(conn, head);
    } else {
      uint32_t first_len = 0;
      for (int i = 0; i < 4; ++i) {
        first_len |= static_cast<uint32_t>(static_cast<uint8_t>(head[i]))
                     << (8 * i);
      }
      bool first = true;
      std::string payload;
      while (true) {
        if (first) {
          first = false;
          if (first_len > options_.max_frame_bytes) break;
          payload.assign(first_len, '\0');
          if (first_len > 0 &&
              !ReadFull(conn->sock, payload.data(), first_len).ok()) {
            break;
          }
        } else if (!ReadFrame(conn->sock, &payload, options_.max_frame_bytes)
                        .ok()) {
          break;
        }
        uint8_t type = 0;
        uint64_t request_id = 0;
        if (!PeekPrologue(payload, &type, &request_id).ok()) break;
        std::string frame;
        switch (static_cast<MessageType>(type)) {
          case MessageType::kSearchRequest: {
            SearchRequest req;
            if (!DecodeSearchRequest(payload, &req).ok()) break;
            StatusOr<SearchResponse> routed = router_->Search(
                req.query, req.top_k, req.mode, req.deadline_us);
            SearchResponse resp;
            if (routed.ok()) {
              resp = std::move(routed).value();
            } else {
              resp.status = routed.status();
            }
            resp.request_id = req.request_id;
            frame = EncodeSearchResponse(resp);
            break;
          }
          case MessageType::kPingRequest: {
            PingRequest req;
            if (!DecodePingRequest(payload, &req).ok()) break;
            PingResponse resp;
            resp.request_id = req.request_id;
            resp.server_name = options_.name;
            resp.num_nodes = router_->total_nodes();
            frame = EncodePingResponse(resp);
            break;
          }
          case MessageType::kMetricsRequest: {
            MetricsRequest req;
            if (!DecodeMetricsRequest(payload, &req).ok()) break;
            MetricsResponse resp;
            resp.request_id = req.request_id;
            resp.text = router_->MetricsText();
            frame = EncodeMetricsResponse(resp);
            break;
          }
          default:
            // Shard-administration messages (stats exchange) and unknown
            // types are not served here.
            break;
        }
        if (frame.empty()) break;  // protocol error or unservable type
        if (!WriteAll(conn->sock, frame).ok()) break;
      }
    }
  }
  conn->sock.Shutdown();
  conn->finished.store(true);
}

void RouterServer::ServeHttp(Connection* conn, const char prefix[4]) {
  std::string line(prefix, 4);
  while (line.size() < 4096 && line.back() != '\n') {
    char ch;
    if (!ReadFull(conn->sock, &ch, 1, std::chrono::milliseconds(2000)).ok()) {
      return;
    }
    line.push_back(ch);
  }
  const size_t path_begin = line.find(' ');
  const size_t path_end =
      path_begin == std::string::npos ? std::string::npos
                                      : line.find(' ', path_begin + 1);
  std::string path = path_end == std::string::npos
                         ? std::string()
                         : line.substr(path_begin + 1,
                                       path_end - path_begin - 1);
  std::string body;
  const char* status = "200 OK";
  if (path == "/metrics") {
    body = router_->MetricsText();
  } else if (path == "/healthz" || path == "/") {
    // Live probe: the health endpoint tells the truth about the shards
    // right now, not at the last query.
    body = "ok\n";
    for (const ShardHealth& h : router_->Probe()) {
      if (!h.alive) {
        status = "503 Service Unavailable";
        body = "shard down: " + h.address.host + ":" +
               std::to_string(h.address.port) + "\n";
        break;
      }
    }
  } else {
    status = "404 Not Found";
    body = "not found\n";
  }
  std::string resp = std::string("HTTP/1.0 ") + status +
                     "\r\nContent-Type: text/plain; charset=utf-8"
                     "\r\nContent-Length: " +
                     std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  if (std::memcmp(prefix, "HEAD", 4) != 0) resp += body;
  (void)WriteAll(conn->sock, resp);
}

}  // namespace net
}  // namespace fts
