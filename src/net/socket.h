// Thin POSIX TCP helpers for the network serving layer: listen/accept/
// connect plus frame-granularity reads and writes with poll-based
// timeouts. Everything returns Status instead of errno so the serving
// code stays in the library's error model; SIGPIPE is never raised
// (writes use MSG_NOSIGNAL).

#ifndef FTS_NET_SOCKET_H_
#define FTS_NET_SOCKET_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace fts {
namespace net {

/// Owning wrapper around one socket fd. Move-only; closes on destruction.
/// Concurrent use contract: one thread may read while another writes
/// (TCP full-duplex); Shutdown() may be called from any thread to wake
/// both (reads then observe EOF, writes fail), which is how servers and
/// clients interrupt blocked peers during teardown.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Disables further sends and receives; a peer (or a thread of this
  /// process) blocked in ReadFull observes EOF. Safe to call twice and on
  /// an invalid socket.
  void Shutdown();

  void Close();

 private:
  int fd_ = -1;
};

/// No timeout: block until completion or a Shutdown/peer close.
inline constexpr std::chrono::milliseconds kNoTimeout{0};

/// Opens a listening IPv4 TCP socket on 127.0.0.1 (`loopback_only`) or
/// 0.0.0.0, with SO_REUSEADDR. `port` 0 binds an ephemeral port;
/// `*bound_port` receives the actual port either way.
StatusOr<Socket> ListenTcp(uint16_t port, uint16_t* bound_port,
                           bool loopback_only = false);

/// Accepts one connection, waiting up to `timeout` (kNoTimeout = one
/// bounded poll tick). Returns NotFound when the wait elapses with no
/// pending connection — the caller's accept loop treats that as "check
/// the stop flag and poll again" — and IOError when the listener is gone.
StatusOr<Socket> AcceptWithTimeout(const Socket& listener,
                                   std::chrono::milliseconds timeout);

/// Connects to host:port (numeric IPv4 or a resolvable name), waiting up
/// to `timeout` (kNoTimeout = OS default).
StatusOr<Socket> ConnectTcp(const std::string& host, uint16_t port,
                            std::chrono::milliseconds timeout = kNoTimeout);

/// Reads exactly `len` bytes into `buf`. Unavailable on clean EOF at
/// offset 0 (peer closed between frames), IOError on mid-read EOF or a
/// socket error, DeadlineExceeded when `timeout` (kNoTimeout = none)
/// elapses first.
Status ReadFull(const Socket& sock, void* buf, size_t len,
                std::chrono::milliseconds timeout = kNoTimeout);

/// Writes all of `data`, never raising SIGPIPE; IOError if the peer went
/// away mid-write.
Status WriteAll(const Socket& sock, std::string_view data);

/// Reads one length-prefixed frame (u32 LE length, then payload) into
/// `*payload`. Rejects frames larger than `max_frame_bytes` with
/// InvalidArgument — the stream is unrecoverable after that (the length
/// cannot be trusted), so callers must close the connection. EOF between
/// frames is Unavailable; EOF inside a frame is IOError.
Status ReadFrame(const Socket& sock, std::string* payload,
                 uint32_t max_frame_bytes,
                 std::chrono::milliseconds timeout = kNoTimeout);

}  // namespace net
}  // namespace fts

#endif  // FTS_NET_SOCKET_H_
