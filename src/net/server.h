// FtsServer: the network front of one index shard (docs/serving.md).
//
// The server wraps a SearchService behind the length-prefixed binary
// protocol of net/wire.h. One acceptor thread polls the listening socket
// (with a bounded tick, so Stop() is deterministic); each connection gets
// a reader thread and a writer thread. The reader decodes frames and
// submits searches to the service — pipelined requests therefore fan out
// across the whole worker pool — while the writer drains a FIFO of
// pending responses, waiting each search future in arrival order, so
// responses always come back in request order on one connection (clients
// additionally match on request_id). Control messages (ping, stats,
// metrics) are answered inline from the reader.
//
// Malformed input fails closed: an oversized declared frame length or an
// undecodable payload poisons the stream (no resynchronization is
// possible), so the server drops the connection; well-formed requests
// that fail evaluation are answered with their Status and the connection
// lives on.
//
// The same port also speaks just enough HTTP for operations: a connection
// whose first bytes are "GET " or "HEAD" is served one plain-text
// response — /metrics (counter dump) or /healthz ("ok") — and closed, so
// curl and a scrape agent need no special client.
//
// Sharding: a scatter-gather router (net/shard_router.h) calls Stats to
// collect this shard's local document frequencies, then SetGlobalStats to
// push the cross-shard aggregate back; the server rebuilds its snapshot
// with IndexSnapshot::CreateSharded and publishes it as a new generation.
// In-flight queries keep the generation they acquired at dequeue; after
// the swap, this shard's scores are bit-identical to the corresponding
// rows of a single-index run over the full corpus.

#ifndef FTS_NET_SERVER_H_
#define FTS_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "common/status.h"
#include "exec/admission.h"
#include "exec/search_service.h"
#include "index/index_snapshot.h"
#include "net/socket.h"
#include "net/wire.h"

namespace fts {
namespace net {

/// A SnapshotSource whose generation can be republished while a service
/// serves from it: SetGlobalStats swaps in the sharded snapshot under a
/// mutex, queries in flight keep the shared_ptr they already acquired.
class ServingSnapshotSource : public SnapshotSource {
 public:
  explicit ServingSnapshotSource(std::shared_ptr<const IndexSnapshot> snapshot)
      : snapshot_(std::move(snapshot)) {}

  std::shared_ptr<const IndexSnapshot> snapshot() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return snapshot_;
  }

  void Publish(std::shared_ptr<const IndexSnapshot> snapshot) {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot_ = std::move(snapshot);
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const IndexSnapshot> snapshot_;
};

class FtsServer {
 public:
  struct Options {
    /// TCP port; 0 binds an ephemeral port (read it back via port()).
    uint16_t port = 0;
    /// Bind 127.0.0.1 only (tests, single-host deployments) vs 0.0.0.0.
    bool loopback_only = true;
    /// Reported in ping responses and /metrics.
    std::string name = "fts";
    SearchService::Options service;
    AdmissionOptions admission;
    uint32_t max_frame_bytes = kMaxFrameBytes;
  };

  /// Serves `index` (shared ownership; also the segment a SetGlobalStats
  /// rebuild re-wraps). The server is idle until Start().
  FtsServer(std::shared_ptr<const InvertedIndex> index, Options options);
  ~FtsServer();

  FtsServer(const FtsServer&) = delete;
  FtsServer& operator=(const FtsServer&) = delete;

  /// Binds, listens, and spawns the acceptor. Fails (without spawning
  /// anything) if the port cannot be bound.
  Status Start();

  /// Stops intake, wakes every connection, joins all threads, drains the
  /// service. Idempotent; also run by the destructor.
  void Stop();

  /// The bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }

  const SearchService& service() const { return *service_; }

  /// The plain-text body /metrics serves; exposed for the binary Metrics
  /// message and for tests.
  std::string MetricsText() const;

 private:
  /// One response slot in a connection's FIFO: either an already-encoded
  /// frame (control messages, admission rejections) or a search future the
  /// writer must wait on and encode.
  struct Outgoing {
    std::string ready;
    uint64_t request_id = 0;
    std::optional<std::future<StatusOr<RoutedResult>>> pending;
  };

  struct Connection {
    Socket sock;
    std::thread reader;
    std::thread writer;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Outgoing> out;
    bool reader_done = false;
    /// Both threads finished; the acceptor may reap this connection.
    std::atomic<bool> finished{false};
  };

  void AcceptLoop();
  void ReaderLoop(Connection* conn);
  void WriterLoop(Connection* conn);
  /// Joins and erases finished connections (acceptor thread only).
  void ReapConnections(bool all);

  /// Decodes and dispatches one binary frame; false poisons the stream
  /// (undecodable frame) and makes the reader drop the connection.
  bool HandleFrame(Connection* conn, const std::string& payload);
  void HandleSearch(Connection* conn, const SearchRequest& req);
  /// Serves one HTTP request (first 4 bytes already read) and returns;
  /// the connection closes afterwards.
  void HandleHttp(Connection* conn, const char prefix[4]);

  /// Enqueues a response slot for `conn`'s writer.
  void Push(Connection* conn, Outgoing out);

  Options options_;
  std::shared_ptr<const InvertedIndex> index_;
  ServingSnapshotSource source_;
  std::unique_ptr<SearchService> service_;
  std::unique_ptr<AdmissionController> admission_;

  Socket listener_;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{true};
  std::thread acceptor_;
  std::mutex conns_mu_;
  std::list<std::unique_ptr<Connection>> conns_;

  mutable std::mutex stats_mu_;
  uint64_t accepted_connections_ = 0;
  uint64_t shed_queries_ = 0;
  uint64_t protocol_errors_ = 0;
  std::atomic<uint64_t> generation_{0};
};

}  // namespace net
}  // namespace fts

#endif  // FTS_NET_SERVER_H_
