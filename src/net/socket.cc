#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "net/wire.h"

namespace fts {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string("net: ") + what + ": " + strerror(errno));
}

/// Waits for `events` on fd. Returns 1 ready / 0 timeout, retrying EINTR.
int PollOne(int fd, short events, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  while (true) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc >= 0) return rc;
    if (errno != EINTR) return -1;
  }
}

}  // namespace

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Socket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<Socket> ListenTcp(uint16_t port, uint16_t* bound_port,
                           bool loopback_only) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(loopback_only ? INADDR_LOOPBACK : INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (::listen(fd, 128) != 0) return Errno("listen");
  if (bound_port != nullptr) {
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) != 0) {
      return Errno("getsockname");
    }
    *bound_port = ntohs(addr.sin_port);
  }
  return sock;
}

StatusOr<Socket> AcceptWithTimeout(const Socket& listener,
                                   std::chrono::milliseconds timeout) {
  // A zero timeout still polls for one bounded tick (rather than blocking
  // forever in accept): the acceptor loop interleaves these ticks with its
  // stop-flag check, which is what makes server shutdown deterministic —
  // close() on an fd another thread has blocking-accept'ed is not reliably
  // wakeful on Linux.
  const int timeout_ms =
      timeout == kNoTimeout ? 100 : static_cast<int>(timeout.count());
  const int ready = PollOne(listener.fd(), POLLIN, timeout_ms);
  if (ready < 0) return Errno("poll(listen)");
  if (ready == 0) return Status::NotFound("accept timed out");
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) return Errno("accept");
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

StatusOr<Socket> ConnectTcp(const std::string& host, uint16_t port,
                            std::chrono::milliseconds timeout) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res);
  if (rc != 0 || res == nullptr) {
    return Status::IOError("net: cannot resolve " + host + ": " +
                           gai_strerror(rc));
  }
  Status last = Status::IOError("net: no addresses for " + host);
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    Socket sock(fd);
    if (timeout != kNoTimeout) {
      // Non-blocking connect + poll implements the timeout, then the
      // socket reverts to blocking for the framed IO helpers.
      const int flags = ::fcntl(fd, F_GETFL, 0);
      ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
      const int crc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
      if (crc != 0 && errno != EINPROGRESS) {
        last = Errno("connect");
        continue;
      }
      if (crc != 0) {
        const int ready =
            PollOne(fd, POLLOUT, static_cast<int>(timeout.count()));
        if (ready <= 0) {
          last = ready == 0
                     ? Status::DeadlineExceeded("net: connect timed out")
                     : Errno("poll(connect)");
          continue;
        }
        int err = 0;
        socklen_t err_len = sizeof(err);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
        if (err != 0) {
          errno = err;
          last = Errno("connect");
          continue;
        }
      }
      ::fcntl(fd, F_SETFL, flags);
    } else if (::connect(fd, ai->ai_addr, ai->ai_addrlen) != 0) {
      last = Errno("connect");
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ::freeaddrinfo(res);
    return sock;
  }
  ::freeaddrinfo(res);
  return last;
}

Status ReadFull(const Socket& sock, void* buf, size_t len,
                std::chrono::milliseconds timeout) {
  const auto start = std::chrono::steady_clock::now();
  size_t got = 0;
  char* out = static_cast<char*>(buf);
  while (got < len) {
    if (timeout != kNoTimeout) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start);
      const auto left = timeout - elapsed;
      if (left.count() <= 0) {
        return Status::DeadlineExceeded("net: read timed out");
      }
      const int ready =
          PollOne(sock.fd(), POLLIN, static_cast<int>(left.count()));
      if (ready < 0) return Errno("poll(read)");
      if (ready == 0) return Status::DeadlineExceeded("net: read timed out");
    }
    const ssize_t n = ::recv(sock.fd(), out + got, len - got, 0);
    if (n == 0) {
      // Clean close at a frame boundary is the peer hanging up, not
      // corruption; mid-object EOF is a truncated stream.
      return got == 0 ? Status::Unavailable("net: connection closed by peer")
                      : Status::IOError("net: connection closed mid-read");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status WriteAll(const Socket& sock, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(sock.fd(), data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadFrame(const Socket& sock, std::string* payload,
                 uint32_t max_frame_bytes, std::chrono::milliseconds timeout) {
  uint8_t header[kFrameHeaderBytes];
  FTS_RETURN_IF_ERROR(ReadFull(sock, header, sizeof(header), timeout));
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<uint32_t>(header[i]) << (8 * i);
  if (len > max_frame_bytes) {
    // The declared length exceeds the bound, so the stream can never be
    // resynchronized — the caller must fail closed and drop the
    // connection rather than allocate or skip.
    return Status::InvalidArgument(
        "net: frame of " + std::to_string(len) + " bytes exceeds limit of " +
        std::to_string(max_frame_bytes));
  }
  payload->resize(len);
  if (len == 0) return Status::OK();
  Status read = ReadFull(sock, payload->data(), len, timeout);
  if (!read.ok() && read.code() == StatusCode::kUnavailable) {
    // EOF after a header is a truncated frame, not a clean hangup.
    return Status::IOError("net: connection closed mid-frame");
  }
  return read;
}

}  // namespace net
}  // namespace fts
