// FtsClient: C++ client for the fts wire protocol (docs/serving.md).
//
// One client owns one TCP connection (opened lazily on the first call and
// reopened transparently after a disconnect) plus a background reader
// thread that matches response frames to in-flight requests by request id.
// Because matching is id-based, calls pipeline: SearchAsync returns a
// future immediately and many requests can be in flight on the one
// connection — the server evaluates them concurrently across its worker
// pool and streams responses back in request order. The synchronous
// wrappers are Submit-then-wait with a client-side timeout
// (DeadlineExceeded on expiry; the server may still complete the query —
// pass a server-side deadline too when that matters).
//
// Failure model: when the connection dies, every in-flight call fails
// with Unavailable and the next call reconnects. A response frame that
// cannot be decoded fails only its own call (InvalidArgument); an
// undecodable frame *prologue* poisons the stream and fails everything.
// Thread-safe: any thread may issue calls concurrently.

#ifndef FTS_NET_CLIENT_H_
#define FTS_NET_CLIENT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "net/socket.h"
#include "net/wire.h"

namespace fts {
namespace net {

class FtsClient {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    std::chrono::milliseconds connect_timeout{5000};
    /// Client-side wait bound of the synchronous wrappers; zero = wait
    /// forever (the reader still fails the call if the connection dies).
    std::chrono::milliseconds call_timeout{30000};
    uint32_t max_frame_bytes = kMaxFrameBytes;
  };

  explicit FtsClient(Options options) : options_(std::move(options)) {}
  ~FtsClient();

  FtsClient(const FtsClient&) = delete;
  FtsClient& operator=(const FtsClient&) = delete;

  /// Pipelined search: returns immediately; the future resolves when the
  /// response frame arrives (or the connection dies). `req.request_id` is
  /// assigned by the client.
  std::future<StatusOr<SearchResponse>> SearchAsync(SearchRequest req);

  /// Synchronous search. `deadline_us` > 0 additionally asks the server
  /// to abandon evaluation after that many microseconds (the reply is
  /// then a kDeadlineExceeded status).
  StatusOr<SearchResponse> Search(std::string_view query, uint32_t top_k = 0,
                                  WireCursorMode mode = WireCursorMode::kDefault,
                                  uint64_t deadline_us = 0);

  StatusOr<PingResponse> Ping();
  StatusOr<StatsResponse> Stats();
  StatusOr<SetGlobalStatsResponse> SetGlobalStats(
      uint64_t global_live_nodes,
      std::vector<std::pair<std::string, uint32_t>> df_by_text);
  StatusOr<MetricsResponse> Metrics();

  /// Closes the connection and fails everything in flight; the next call
  /// reconnects. Idempotent.
  void Disconnect();

  bool connected() const { return connected_.load(); }

 private:
  using Handler = std::function<void(StatusOr<std::string>)>;

  /// Connects (if needed) and starts the reader. Serialized; concurrent
  /// callers wait and then observe the established connection.
  Status EnsureConnected();
  /// Registers `handler` for `id` and writes `frame`; on any failure the
  /// handler is completed with the error instead (never lost).
  void Dispatch(uint64_t id, Handler handler, const std::string& frame);
  /// Registers a raw pending slot, sends, and waits up to `timeout`
  /// (zero = forever) for the response payload.
  StatusOr<std::string> RoundTrip(uint64_t id, const std::string& frame,
                                  std::chrono::milliseconds timeout);
  void ReaderLoop();
  void FailAllPending(const Status& error);
  uint64_t NextId() { return next_id_.fetch_add(1) + 1; }

  Options options_;

  /// Serializes connect/disconnect transitions.
  std::mutex state_mu_;
  /// Guards sock_ replacement and all writes (frames must not interleave).
  std::mutex write_mu_;
  Socket sock_;
  std::thread reader_;
  std::atomic<bool> connected_{false};

  std::mutex pending_mu_;
  std::unordered_map<uint64_t, Handler> pending_;
  std::atomic<uint64_t> next_id_{0};
};

}  // namespace net
}  // namespace fts

#endif  // FTS_NET_CLIENT_H_
