#include "net/wire.h"

#include <cstring>

namespace fts {
namespace net {

namespace {

/// Number of EvalCounters fields this build knows how to (de)serialize,
/// in struct declaration order. Kept next to the field list below so a
/// new counter is a two-line change here.
constexpr uint32_t kNumCounterFields = 21;

/// The counters in declaration order; the single source of truth for the
/// wire layout of EvalCounters (PutCounters writes this order, GetCounters
/// reads it).
void CounterFields(EvalCounters& c, uint64_t** fields) {
  uint64_t* f[] = {
      &c.entries_scanned,        &c.positions_scanned,
      &c.tuples_materialized,    &c.predicate_evals,
      &c.cursor_ops,             &c.orderings_run,
      &c.skip_checks,            &c.blocks_decoded,
      &c.entries_decoded,        &c.positions_decoded,
      &c.blocks_bulk_decoded,    &c.cache_hits,
      &c.cache_misses,           &c.shared_cache_hits,
      &c.shared_cache_misses,    &c.first_touch_validations,
      &c.blocks_skipped_by_score, &c.simd_groups_decoded,
      &c.bitset_blocks_intersected, &c.pair_seeks,
      &c.pair_entries_decoded,
  };
  static_assert(sizeof(f) / sizeof(f[0]) == kNumCounterFields);
  std::memcpy(fields, f, sizeof(f));
}

/// Appends the shared request/response prologue.
void PutPrologue(std::string* out, MessageType type, uint64_t request_id) {
  PutU8(out, kProtocolVersion);
  PutU8(out, static_cast<uint8_t>(type));
  PutU64(out, request_id);
}

/// Wraps a finished payload in the length-prefix frame.
std::string Frame(std::string payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  out += payload;
  return out;
}

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("wire: malformed frame: ") + what);
}

/// Consumes and validates the prologue; fails on version or type mismatch.
Status ReadPrologue(WireReader& r, MessageType expected, uint64_t* request_id) {
  uint8_t version = 0, type = 0;
  if (!r.GetU8(&version) || !r.GetU8(&type) || !r.GetU64(request_id)) {
    return Malformed("truncated prologue");
  }
  if (version != kProtocolVersion) {
    return Status::InvalidArgument("wire: unsupported protocol version " +
                                   std::to_string(version));
  }
  if (type != static_cast<uint8_t>(expected)) {
    return Malformed("unexpected message type");
  }
  return Status::OK();
}

/// Messages must consume the whole payload — trailing bytes mean the
/// sender and receiver disagree about the layout.
Status ExpectEnd(const WireReader& r) {
  if (!r.AtEnd()) return Malformed("trailing bytes after message body");
  return Status::OK();
}

void PutStatus(std::string* out, const Status& s) {
  PutU8(out, static_cast<uint8_t>(s.code()));
  PutString(out, s.ok() ? std::string_view() : std::string_view(s.message()));
}

bool GetStatus(WireReader& r, Status* out) {
  uint8_t code = 0;
  std::string msg;
  if (!r.GetU8(&code) || !r.GetString(&msg)) return false;
  if (code > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    // A code minted by a newer peer: preserve the message, surface it as
    // an internal error rather than inventing semantics for it.
    *out = Status::Internal("wire: unknown status code " +
                            std::to_string(code) + ": " + msg);
    return true;
  }
  if (code == 0) {
    *out = Status::OK();
  } else {
    *out = Status(static_cast<StatusCode>(code), std::move(msg));
  }
  return true;
}

void PutDfTable(std::string* out,
                const std::vector<std::pair<std::string, uint32_t>>& table) {
  PutU32(out, static_cast<uint32_t>(table.size()));
  for (const auto& [text, df] : table) {
    PutString(out, text);
    PutU32(out, df);
  }
}

bool GetDfTable(WireReader& r,
                std::vector<std::pair<std::string, uint32_t>>* out) {
  uint32_t n = 0;
  if (!r.GetU32(&n)) return false;
  // Each entry costs at least 8 bytes on the wire; a count promising more
  // entries than the remaining bytes could hold is a forged length.
  if (static_cast<uint64_t>(n) * 8 > r.remaining()) return false;
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string text;
    uint32_t df = 0;
    if (!r.GetString(&text) || !r.GetU32(&df)) return false;
    out->emplace_back(std::move(text), df);
  }
  return true;
}

}  // namespace

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

void PutDouble(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutCounters(std::string* out, const EvalCounters& c) {
  uint64_t* fields[kNumCounterFields];
  CounterFields(const_cast<EvalCounters&>(c), fields);
  PutU32(out, kNumCounterFields);
  for (uint32_t i = 0; i < kNumCounterFields; ++i) PutU64(out, *fields[i]);
}

bool WireReader::GetU8(uint8_t* v) {
  if (data_.size() - pos_ < 1) return false;
  *v = static_cast<uint8_t>(data_[pos_++]);
  return true;
}

bool WireReader::GetU32(uint32_t* v) {
  if (data_.size() - pos_ < 4) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 4;
  *v = out;
  return true;
}

bool WireReader::GetU64(uint64_t* v) {
  if (data_.size() - pos_ < 8) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 8;
  *v = out;
  return true;
}

bool WireReader::GetString(std::string* v) {
  uint32_t len = 0;
  if (!GetU32(&len)) return false;
  if (data_.size() - pos_ < len) return false;
  v->assign(data_.data() + pos_, len);
  pos_ += len;
  return true;
}

bool WireReader::GetDouble(double* v) {
  uint64_t bits = 0;
  if (!GetU64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

bool WireReader::GetCounters(EvalCounters* c) {
  uint32_t sent = 0;
  if (!GetU32(&sent)) return false;
  if (static_cast<uint64_t>(sent) * 8 > remaining()) return false;
  *c = EvalCounters{};
  uint64_t* fields[kNumCounterFields];
  CounterFields(*c, fields);
  for (uint32_t i = 0; i < sent; ++i) {
    uint64_t v = 0;
    if (!GetU64(&v)) return false;
    // Fields beyond what this build knows are skipped: a newer peer's
    // extra counters are not an error (versioning rule, docs/serving.md).
    if (i < kNumCounterFields) *fields[i] = v;
  }
  return true;
}

std::string EncodeSearchRequest(const SearchRequest& req) {
  std::string p;
  PutPrologue(&p, MessageType::kSearchRequest, req.request_id);
  PutU32(&p, req.top_k);
  PutU8(&p, static_cast<uint8_t>(req.mode));
  PutU64(&p, req.deadline_us);
  PutString(&p, req.query);
  return Frame(std::move(p));
}

Status DecodeSearchRequest(std::string_view payload, SearchRequest* out) {
  WireReader r(payload);
  FTS_RETURN_IF_ERROR(
      ReadPrologue(r, MessageType::kSearchRequest, &out->request_id));
  uint8_t mode = 0;
  if (!r.GetU32(&out->top_k) || !r.GetU8(&mode) || !r.GetU64(&out->deadline_us) ||
      !r.GetString(&out->query)) {
    return Malformed("truncated search request");
  }
  if (mode > static_cast<uint8_t>(WireCursorMode::kAdaptive)) {
    return Malformed("unknown cursor mode");
  }
  out->mode = static_cast<WireCursorMode>(mode);
  return ExpectEnd(r);
}

std::string EncodeSearchResponse(const SearchResponse& resp) {
  std::string p;
  PutPrologue(&p, MessageType::kSearchResponse, resp.request_id);
  PutStatus(&p, resp.status);
  PutU8(&p, static_cast<uint8_t>(resp.language_class));
  PutString(&p, resp.engine);
  PutU8(&p, resp.scores.empty() ? 0 : 1);
  PutU32(&p, static_cast<uint32_t>(resp.nodes.size()));
  for (WireNodeId n : resp.nodes) PutU64(&p, n);
  for (double s : resp.scores) PutDouble(&p, s);
  PutCounters(&p, resp.counters);
  return Frame(std::move(p));
}

Status DecodeSearchResponse(std::string_view payload, SearchResponse* out) {
  WireReader r(payload);
  FTS_RETURN_IF_ERROR(
      ReadPrologue(r, MessageType::kSearchResponse, &out->request_id));
  uint8_t cls = 0, has_scores = 0;
  uint32_t n = 0;
  if (!GetStatus(r, &out->status) || !r.GetU8(&cls) ||
      !r.GetString(&out->engine) || !r.GetU8(&has_scores) || !r.GetU32(&n)) {
    return Malformed("truncated search response");
  }
  if (cls > static_cast<uint8_t>(LanguageClass::kComp)) {
    return Malformed("unknown language class");
  }
  out->language_class = static_cast<LanguageClass>(cls);
  const uint64_t per_result = has_scores ? 16 : 8;
  if (static_cast<uint64_t>(n) * per_result > r.remaining()) {
    return Malformed("result count overruns frame");
  }
  out->nodes.assign(n, 0);
  for (uint32_t i = 0; i < n; ++i) {
    if (!r.GetU64(&out->nodes[i])) return Malformed("truncated node list");
  }
  out->scores.clear();
  if (has_scores) {
    out->scores.assign(n, 0.0);
    for (uint32_t i = 0; i < n; ++i) {
      if (!r.GetDouble(&out->scores[i])) return Malformed("truncated scores");
    }
  }
  if (!r.GetCounters(&out->counters)) return Malformed("truncated counters");
  return ExpectEnd(r);
}

std::string EncodePingRequest(const PingRequest& req) {
  std::string p;
  PutPrologue(&p, MessageType::kPingRequest, req.request_id);
  return Frame(std::move(p));
}

Status DecodePingRequest(std::string_view payload, PingRequest* out) {
  WireReader r(payload);
  FTS_RETURN_IF_ERROR(
      ReadPrologue(r, MessageType::kPingRequest, &out->request_id));
  return ExpectEnd(r);
}

std::string EncodePingResponse(const PingResponse& resp) {
  std::string p;
  PutPrologue(&p, MessageType::kPingResponse, resp.request_id);
  PutString(&p, resp.server_name);
  PutU64(&p, resp.num_nodes);
  PutU64(&p, resp.generation);
  return Frame(std::move(p));
}

Status DecodePingResponse(std::string_view payload, PingResponse* out) {
  WireReader r(payload);
  FTS_RETURN_IF_ERROR(
      ReadPrologue(r, MessageType::kPingResponse, &out->request_id));
  if (!r.GetString(&out->server_name) || !r.GetU64(&out->num_nodes) ||
      !r.GetU64(&out->generation)) {
    return Malformed("truncated ping response");
  }
  return ExpectEnd(r);
}

std::string EncodeStatsRequest(const StatsRequest& req) {
  std::string p;
  PutPrologue(&p, MessageType::kStatsRequest, req.request_id);
  return Frame(std::move(p));
}

Status DecodeStatsRequest(std::string_view payload, StatsRequest* out) {
  WireReader r(payload);
  FTS_RETURN_IF_ERROR(
      ReadPrologue(r, MessageType::kStatsRequest, &out->request_id));
  return ExpectEnd(r);
}

std::string EncodeStatsResponse(const StatsResponse& resp) {
  std::string p;
  PutPrologue(&p, MessageType::kStatsResponse, resp.request_id);
  PutU64(&p, resp.num_nodes);
  PutDfTable(&p, resp.df_by_text);
  return Frame(std::move(p));
}

Status DecodeStatsResponse(std::string_view payload, StatsResponse* out) {
  WireReader r(payload);
  FTS_RETURN_IF_ERROR(
      ReadPrologue(r, MessageType::kStatsResponse, &out->request_id));
  if (!r.GetU64(&out->num_nodes) || !GetDfTable(r, &out->df_by_text)) {
    return Malformed("truncated stats response");
  }
  return ExpectEnd(r);
}

std::string EncodeSetGlobalStatsRequest(const SetGlobalStatsRequest& req) {
  std::string p;
  PutPrologue(&p, MessageType::kSetGlobalStatsRequest, req.request_id);
  PutU64(&p, req.global_live_nodes);
  PutDfTable(&p, req.df_by_text);
  return Frame(std::move(p));
}

Status DecodeSetGlobalStatsRequest(std::string_view payload,
                                   SetGlobalStatsRequest* out) {
  WireReader r(payload);
  FTS_RETURN_IF_ERROR(
      ReadPrologue(r, MessageType::kSetGlobalStatsRequest, &out->request_id));
  if (!r.GetU64(&out->global_live_nodes) || !GetDfTable(r, &out->df_by_text)) {
    return Malformed("truncated set-global-stats request");
  }
  return ExpectEnd(r);
}

std::string EncodeSetGlobalStatsResponse(const SetGlobalStatsResponse& resp) {
  std::string p;
  PutPrologue(&p, MessageType::kSetGlobalStatsResponse, resp.request_id);
  PutStatus(&p, resp.status);
  return Frame(std::move(p));
}

Status DecodeSetGlobalStatsResponse(std::string_view payload,
                                    SetGlobalStatsResponse* out) {
  WireReader r(payload);
  FTS_RETURN_IF_ERROR(
      ReadPrologue(r, MessageType::kSetGlobalStatsResponse, &out->request_id));
  if (!GetStatus(r, &out->status)) {
    return Malformed("truncated set-global-stats response");
  }
  return ExpectEnd(r);
}

std::string EncodeMetricsRequest(const MetricsRequest& req) {
  std::string p;
  PutPrologue(&p, MessageType::kMetricsRequest, req.request_id);
  return Frame(std::move(p));
}

Status DecodeMetricsRequest(std::string_view payload, MetricsRequest* out) {
  WireReader r(payload);
  FTS_RETURN_IF_ERROR(
      ReadPrologue(r, MessageType::kMetricsRequest, &out->request_id));
  return ExpectEnd(r);
}

std::string EncodeMetricsResponse(const MetricsResponse& resp) {
  std::string p;
  PutPrologue(&p, MessageType::kMetricsResponse, resp.request_id);
  PutString(&p, resp.text);
  return Frame(std::move(p));
}

Status DecodeMetricsResponse(std::string_view payload, MetricsResponse* out) {
  WireReader r(payload);
  FTS_RETURN_IF_ERROR(
      ReadPrologue(r, MessageType::kMetricsResponse, &out->request_id));
  if (!r.GetString(&out->text)) return Malformed("truncated metrics response");
  return ExpectEnd(r);
}

Status PeekPrologue(std::string_view payload, uint8_t* type,
                    uint64_t* request_id) {
  WireReader r(payload);
  uint8_t version = 0;
  if (!r.GetU8(&version) || !r.GetU8(type) || !r.GetU64(request_id)) {
    return Malformed("truncated prologue");
  }
  if (version != kProtocolVersion) {
    return Status::InvalidArgument("wire: unsupported protocol version " +
                                   std::to_string(version));
  }
  return Status::OK();
}

std::optional<CursorMode> ToCursorMode(WireCursorMode mode) {
  switch (mode) {
    case WireCursorMode::kDefault:
      return std::nullopt;
    case WireCursorMode::kSequential:
      return CursorMode::kSequential;
    case WireCursorMode::kSeek:
      return CursorMode::kSeek;
    case WireCursorMode::kAdaptive:
      return CursorMode::kAdaptive;
  }
  return std::nullopt;
}

}  // namespace net
}  // namespace fts
