#include "net/client.h"

#include <memory>

namespace fts {
namespace net {

namespace {

/// Completes a typed promise from a raw response payload.
template <typename Resp>
void CompleteTyped(std::promise<StatusOr<Resp>>* promise,
                   Status (*decode)(std::string_view, Resp*),
                   StatusOr<std::string> payload) {
  if (!payload.ok()) {
    promise->set_value(payload.status());
    return;
  }
  Resp resp;
  const Status s = decode(*payload, &resp);
  if (!s.ok()) {
    promise->set_value(s);
  } else {
    promise->set_value(std::move(resp));
  }
}

}  // namespace

FtsClient::~FtsClient() { Disconnect(); }

Status FtsClient::EnsureConnected() {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (connected_.load()) return Status::OK();
  // A previous connection's reader has set connected_ to false and is
  // exiting (or has exited); it never touches the socket after that, so
  // joining here makes the replacement below race-free.
  if (reader_.joinable()) reader_.join();
  FTS_ASSIGN_OR_RETURN(
      Socket sock,
      ConnectTcp(options_.host, options_.port, options_.connect_timeout));
  {
    std::lock_guard<std::mutex> wlock(write_mu_);
    sock_ = std::move(sock);
  }
  connected_.store(true);
  reader_ = std::thread([this] { ReaderLoop(); });
  return Status::OK();
}

void FtsClient::Disconnect() {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    connected_.store(false);
    sock_.Shutdown();  // wakes the reader, which fails all pending
    if (reader_.joinable()) reader_.join();
    std::lock_guard<std::mutex> wlock(write_mu_);
    sock_.Close();
  }
  // The reader normally fails in-flight calls; cover the path where it
  // was never started (or already gone) so nothing is left hanging.
  FailAllPending(Status::Unavailable("net: client disconnected"));
}

void FtsClient::ReaderLoop() {
  while (true) {
    std::string payload;
    Status s = ReadFrame(sock_, &payload, options_.max_frame_bytes);
    Status failure;
    if (!s.ok()) {
      failure = s.code() == StatusCode::kUnavailable
                    ? Status::Unavailable("net: connection closed")
                    : Status::Unavailable("net: connection lost: " + s.message());
    } else {
      uint8_t type = 0;
      uint64_t id = 0;
      const Status peek = PeekPrologue(payload, &type, &id);
      if (peek.ok()) {
        Handler handler;
        {
          std::lock_guard<std::mutex> lock(pending_mu_);
          const auto it = pending_.find(id);
          if (it != pending_.end()) {
            handler = std::move(it->second);
            pending_.erase(it);
          }
        }
        // No handler = a call that already timed out client-side; the
        // late response is dropped.
        if (handler) handler(std::move(payload));
        continue;
      }
      // An unreadable prologue cannot be attributed to any request — the
      // stream is poisoned, so everything in flight fails.
      failure = peek;
    }
    connected_.store(false);
    sock_.Shutdown();
    FailAllPending(failure);
    return;
  }
}

void FtsClient::FailAllPending(const Status& error) {
  std::unordered_map<uint64_t, Handler> doomed;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    doomed.swap(pending_);
  }
  for (auto& [id, handler] : doomed) handler(error);
}

void FtsClient::Dispatch(uint64_t id, Handler handler,
                         const std::string& frame) {
  const Status conn = EnsureConnected();
  if (!conn.ok()) {
    handler(conn);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_.emplace(id, std::move(handler));
  }
  Status sent;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    sent = connected_.load()
               ? WriteAll(sock_, frame)
               : Status::Unavailable("net: connection lost before send");
  }
  if (!sent.ok()) {
    // Reclaim the slot (the reader may have failed it already).
    Handler reclaimed;
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      const auto it = pending_.find(id);
      if (it != pending_.end()) {
        reclaimed = std::move(it->second);
        pending_.erase(it);
      }
    }
    if (reclaimed) reclaimed(sent);
  }
}

StatusOr<std::string> FtsClient::RoundTrip(uint64_t id,
                                           const std::string& frame,
                                           std::chrono::milliseconds timeout) {
  auto promise = std::make_shared<std::promise<StatusOr<std::string>>>();
  std::future<StatusOr<std::string>> future = promise->get_future();
  Dispatch(id, [promise](StatusOr<std::string> payload) {
    promise->set_value(std::move(payload));
  }, frame);
  if (timeout.count() > 0 &&
      future.wait_for(timeout) != std::future_status::ready) {
    // Abandon the slot; a late response is dropped by the reader.
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_.erase(id);
    return Status::DeadlineExceeded("net: call timed out after " +
                                    std::to_string(timeout.count()) + "ms");
  }
  return future.get();
}

std::future<StatusOr<SearchResponse>> FtsClient::SearchAsync(
    SearchRequest req) {
  req.request_id = NextId();
  auto promise = std::make_shared<std::promise<StatusOr<SearchResponse>>>();
  std::future<StatusOr<SearchResponse>> future = promise->get_future();
  Dispatch(req.request_id,
           [promise](StatusOr<std::string> payload) {
             CompleteTyped<SearchResponse>(promise.get(), DecodeSearchResponse,
                                           std::move(payload));
           },
           EncodeSearchRequest(req));
  return future;
}

StatusOr<SearchResponse> FtsClient::Search(std::string_view query,
                                           uint32_t top_k, WireCursorMode mode,
                                           uint64_t deadline_us) {
  SearchRequest req;
  req.request_id = NextId();
  req.query = std::string(query);
  req.top_k = top_k;
  req.mode = mode;
  req.deadline_us = deadline_us;
  // A server-side deadline extends the client-side wait so the server's
  // own kDeadlineExceeded answer can make it back.
  std::chrono::milliseconds wait = options_.call_timeout;
  if (wait.count() > 0 && deadline_us > 0) {
    wait += std::chrono::milliseconds(deadline_us / 1000 + 1);
  }
  FTS_ASSIGN_OR_RETURN(
      std::string payload,
      RoundTrip(req.request_id, EncodeSearchRequest(req), wait));
  SearchResponse resp;
  FTS_RETURN_IF_ERROR(DecodeSearchResponse(payload, &resp));
  return resp;
}

StatusOr<PingResponse> FtsClient::Ping() {
  PingRequest req;
  req.request_id = NextId();
  FTS_ASSIGN_OR_RETURN(std::string payload,
                       RoundTrip(req.request_id, EncodePingRequest(req),
                                 options_.call_timeout));
  PingResponse resp;
  FTS_RETURN_IF_ERROR(DecodePingResponse(payload, &resp));
  return resp;
}

StatusOr<StatsResponse> FtsClient::Stats() {
  StatsRequest req;
  req.request_id = NextId();
  FTS_ASSIGN_OR_RETURN(std::string payload,
                       RoundTrip(req.request_id, EncodeStatsRequest(req),
                                 options_.call_timeout));
  StatsResponse resp;
  FTS_RETURN_IF_ERROR(DecodeStatsResponse(payload, &resp));
  return resp;
}

StatusOr<SetGlobalStatsResponse> FtsClient::SetGlobalStats(
    uint64_t global_live_nodes,
    std::vector<std::pair<std::string, uint32_t>> df_by_text) {
  SetGlobalStatsRequest req;
  req.request_id = NextId();
  req.global_live_nodes = global_live_nodes;
  req.df_by_text = std::move(df_by_text);
  FTS_ASSIGN_OR_RETURN(
      std::string payload,
      RoundTrip(req.request_id, EncodeSetGlobalStatsRequest(req),
                options_.call_timeout));
  SetGlobalStatsResponse resp;
  FTS_RETURN_IF_ERROR(DecodeSetGlobalStatsResponse(payload, &resp));
  return resp;
}

StatusOr<MetricsResponse> FtsClient::Metrics() {
  MetricsRequest req;
  req.request_id = NextId();
  FTS_ASSIGN_OR_RETURN(std::string payload,
                       RoundTrip(req.request_id, EncodeMetricsRequest(req),
                                 options_.call_timeout));
  MetricsResponse resp;
  FTS_RETURN_IF_ERROR(DecodeMetricsResponse(payload, &resp));
  return resp;
}

}  // namespace net
}  // namespace fts
