// ShardRouter: scatter-gather search over document-partitioned shards
// (docs/serving.md).
//
// The corpus is split into contiguous doc-id ranges, one per shard server
// (Corpus::Slice + fts_build_index --shards). The router connects to every
// shard, reads each shard's node count via ping, and assigns bases by
// prefix sum — shard i's local node n is global node base_i + n — exactly
// the id scheme IndexSnapshot uses for segments, with shards playing the
// role of segments across processes.
//
// Exactness: a routed query answers bit-identically to a single-index run
// over the unsplit corpus.
//   - Unscored (and full scored) results: each shard returns locally
//     ascending ids; bases are disjoint and increasing in shard order, so
//     concatenation in shard order IS the globally ascending result —
//     the same argument Searcher::SearchParsed makes for segments.
//   - Scored top-k: the global top-k under the total order (score desc,
//     id asc) is a subset of the union of per-shard top-k's — a result
//     outside some shard's local top-k is beaten by k results in that
//     shard alone. Sorting the union by the same total order and truncating
//     to k therefore reproduces the single-index TopKAccumulator output
//     exactly; rebasing by a per-shard constant preserves the id
//     tie-break order.
//   - Scores themselves: after ExchangeGlobalStats() pushes the summed
//     df table and live-node count to every shard, each shard recomputes
//     its norms under corpus-global idf (IndexSnapshot::CreateSharded)
//     with the same arithmetic a single-index build runs — so every
//     individual score matches bit for bit.
//   - Counters: field-wise EvalCounters::MergeFrom of the shard counters,
//     matching the per-segment merge of a single multi-segment run.
//
// RouterServer wraps a ShardRouter behind the same wire protocol and
// HTTP /metrics + /healthz endpoints an FtsServer exposes, so a client
// cannot tell a router from a single big server (shard-administration
// messages excepted); /healthz degrades to 503 when any shard is down.

#ifndef FTS_NET_SHARD_ROUTER_H_
#define FTS_NET_SHARD_ROUTER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/client.h"
#include "net/socket.h"
#include "net/wire.h"

namespace fts {
namespace net {

struct ShardAddress {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

/// Point-in-time view of one shard, from the most recent probe.
struct ShardHealth {
  ShardAddress address;
  std::string name;
  bool alive = false;
  uint64_t num_nodes = 0;
  uint64_t generation = 0;
  /// Global id of this shard's local node 0.
  uint64_t base = 0;
};

class ShardRouter {
 public:
  struct Options {
    std::vector<ShardAddress> shards;
    std::chrono::milliseconds connect_timeout{5000};
    std::chrono::milliseconds call_timeout{30000};
  };

  explicit ShardRouter(Options options);

  /// Pings every shard and assigns doc-id bases by prefix sum of shard
  /// node counts, in configured shard order. Must succeed before Search.
  Status Connect();

  /// Collects every shard's local df table, sums them into the corpus
  /// global, and pushes the aggregate back to every shard — after which
  /// shard scores are bit-identical to a single-index run. Required once
  /// (per generation) when shards serve a scored configuration; a no-op
  /// corpus-wise for unscored serving.
  Status ExchangeGlobalStats();

  /// Scatter-gather evaluation; see the file comment for the exactness
  /// argument. All shards must answer — any shard failure fails the query
  /// (a partial answer would silently violate exactness).
  StatusOr<SearchResponse> Search(std::string_view query, uint32_t top_k = 0,
                                  WireCursorMode mode = WireCursorMode::kDefault,
                                  uint64_t deadline_us = 0);

  /// Re-pings every shard, refreshing the liveness view.
  std::vector<ShardHealth> Probe();

  /// The liveness view from the last Connect/Probe (no network traffic).
  std::vector<ShardHealth> health() const;

  /// Sum of shard node counts (the global id space), valid after Connect.
  uint64_t total_nodes() const { return total_nodes_; }

  size_t num_shards() const { return clients_.size(); }

  /// Plain-text metrics for the router's /metrics endpoint.
  std::string MetricsText() const;

 private:
  Options options_;
  std::vector<std::unique_ptr<FtsClient>> clients_;
  uint64_t total_nodes_ = 0;

  mutable std::mutex health_mu_;
  std::vector<ShardHealth> health_;

  mutable std::mutex stats_mu_;
  uint64_t queries_routed_ = 0;
  uint64_t queries_failed_ = 0;
};

/// Serves a ShardRouter behind the wire protocol. Each connection is
/// handled by one thread evaluating requests in order (the fan-out inside
/// ShardRouter::Search already parallelizes across shards; clients wanting
/// concurrent routed queries open multiple connections). Speaks the same
/// HTTP /metrics and /healthz dialect as FtsServer; shard-administration
/// messages (stats exchange) are not served and drop the connection.
class RouterServer {
 public:
  struct Options {
    uint16_t port = 0;
    bool loopback_only = true;
    std::string name = "fts-router";
    uint32_t max_frame_bytes = kMaxFrameBytes;
  };

  /// `router` must be Connect()ed and must outlive the server.
  RouterServer(ShardRouter* router, Options options);
  ~RouterServer();

  RouterServer(const RouterServer&) = delete;
  RouterServer& operator=(const RouterServer&) = delete;

  Status Start();
  void Stop();
  uint16_t port() const { return port_; }

 private:
  struct Connection {
    Socket sock;
    std::thread thread;
    std::atomic<bool> finished{false};
  };

  void AcceptLoop();
  void ServeConnection(Connection* conn);
  void ServeHttp(Connection* conn, const char prefix[4]);
  void ReapConnections(bool all);

  Options options_;
  ShardRouter* router_;
  Socket listener_;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{true};
  std::thread acceptor_;
  std::mutex conns_mu_;
  std::list<std::unique_ptr<Connection>> conns_;
};

}  // namespace net
}  // namespace fts

#endif  // FTS_NET_SHARD_ROUTER_H_
