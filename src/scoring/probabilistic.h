// Probabilistic relational scoring (paper Section 3.2, after the
// Fuhr–Rölleke probabilistic relational algebra).
//
// Every tuple carries a probability in [0,1]; operators combine them:
//   projection:   1 - Π(1 - s_i)          (noisy-or over collapsing tuples)
//   join:         s1 · s2
//   selection:    s · f(pred)             (f = predicate-specific factor,
//                                          e.g. 1 - |p1-p2|/dist)
//   union:        1 - (1-s1)(1-s2)
//   intersection: s1 · s2
//   difference:   s1 · (1 - s2) — under set semantics the surviving tuples
//                 have s2 = 0, so survivors keep s1
//   negation:     1 - s
//
// Leaf probabilities default to idf(t)/ln(1 + db_size), the paper's
// suggested "IDF/NF" normalization (guaranteed to land in [0,1]).

#ifndef FTS_SCORING_PROBABILISTIC_H_
#define FTS_SCORING_PROBABILISTIC_H_

#include "index/index_snapshot.h"
#include "scoring/score_model.h"

namespace fts {

/// Probabilistic score model; corpus-wide (not query-specific). Pass the
/// segment's SegmentScoringStats when scoring one segment of a
/// multi-segment (or tombstoned) snapshot: df and db_size then come from
/// the snapshot-global precomputation (index/index_snapshot.h).
class ProbabilisticScoreModel : public AlgebraScoreModel {
 public:
  explicit ProbabilisticScoreModel(const InvertedIndex* index,
                                   const SegmentScoringStats* stats = nullptr);

  std::string_view name() const override { return "probabilistic"; }

  double LeafScore(const InvertedIndex& index, TokenId token,
                   NodeId node) const override;
  double EntryScore(const InvertedIndex& index, TokenId token, NodeId node,
                    size_t count) const override;
  double AnyLeafScore() const override { return 1.0; }
  /// Exact: the leaf probability is node-independent, so the noisy-or at
  /// count = max_tf is the largest EntryScore any entry in the block can
  /// have (1 - pow(1-p, count) is monotone in count for p in [0,1] under
  /// a correctly rounded pow).
  double EntryScoreUpperBound(const InvertedIndex& index, TokenId token,
                              uint32_t max_tf) const override {
    return EntryScore(index, token, /*node=*/0,
                      static_cast<size_t>(max_tf));
  }
  double JoinScore(double s1, size_t, double s2, size_t) const override {
    return s1 * s2;
  }
  double ProjectCombine(double acc, double next) const override {
    return 1.0 - (1.0 - acc) * (1.0 - next);
  }
  double SelectScore(double s, const PositionPredicate& pred,
                     std::span<const PositionInfo> positions,
                     std::span<const int64_t> consts) const override {
    return s * pred.ScoreFactor(positions, consts);
  }
  double UnionBoth(double s1, double s2) const override {
    return 1.0 - (1.0 - s1) * (1.0 - s2);
  }
  double IntersectScore(double s1, double s2) const override { return s1 * s2; }

 private:
  const InvertedIndex* index_;
  const SegmentScoringStats* stats_;  // nullable (single-segment)
  double norm_;                       // ln(1 + db_size)
};

}  // namespace fts

#endif  // FTS_SCORING_PROBABILISTIC_H_
