// Top-k selection over scored query results.

#ifndef FTS_SCORING_TOPK_H_
#define FTS_SCORING_TOPK_H_

#include <cstddef>
#include <limits>
#include <vector>

#include "text/document.h"

namespace fts {

/// One ranked result.
struct ScoredNode {
  NodeId node = kInvalidNode;
  double score = 0.0;
};

/// Streaming top-k accumulator: keeps the k highest-scoring nodes seen so
/// far using a bounded min-heap; O(log k) per Add.
class TopKAccumulator {
 public:
  explicit TopKAccumulator(size_t k);

  /// Offers (node, score). Tie-break contract at the heap boundary: when
  /// `score` equals the current weakest score, the *smaller* node id is
  /// kept (an equal-scored candidate with a smaller id replaces the
  /// weakest; one with a larger id is rejected). With k == 0 every Add is
  /// a no-op.
  void Add(NodeId node, double score);

  /// Results in descending score order (ties by ascending node id).
  std::vector<ScoredNode> Take();

  size_t size() const { return heap_.size(); }

  /// True when the heap holds k results — from here on threshold() is the
  /// score a candidate must beat (or tie with a smaller node id) to enter.
  bool full() const { return k_ != 0 && heap_.size() >= k_; }

  /// Current entry threshold: the weakest retained score when full,
  /// -infinity otherwise (any score enters). Block-max evaluation skips
  /// blocks whose impact upper bound cannot exceed this.
  double threshold() const {
    return full() ? heap_.front().score
                  : -std::numeric_limits<double>::infinity();
  }

 private:
  size_t k_;
  /// Min-heap ordered by (score ascending, node id descending): the front
  /// is the weakest result — lowest score, and among equal scores the
  /// largest node id, so equal-score ties resolve toward smaller ids.
  std::vector<ScoredNode> heap_;
};

/// Convenience: the top-k of parallel (nodes, scores) vectors.
std::vector<ScoredNode> TopK(const std::vector<NodeId>& nodes,
                             const std::vector<double>& scores, size_t k);

}  // namespace fts

#endif  // FTS_SCORING_TOPK_H_
