// Top-k selection over scored query results.

#ifndef FTS_SCORING_TOPK_H_
#define FTS_SCORING_TOPK_H_

#include <cstddef>
#include <vector>

#include "text/document.h"

namespace fts {

/// One ranked result.
struct ScoredNode {
  NodeId node = kInvalidNode;
  double score = 0.0;
};

/// Streaming top-k accumulator: keeps the k highest-scoring nodes seen so
/// far using a bounded min-heap; O(log k) per Add.
class TopKAccumulator {
 public:
  explicit TopKAccumulator(size_t k);

  void Add(NodeId node, double score);

  /// Results in descending score order (ties by ascending node id).
  std::vector<ScoredNode> Take();

  size_t size() const { return heap_.size(); }

 private:
  size_t k_;
  std::vector<ScoredNode> heap_;  // min-heap on (score, -node)
};

/// Convenience: the top-k of parallel (nodes, scores) vectors.
std::vector<ScoredNode> TopK(const std::vector<NodeId>& nodes,
                             const std::vector<double>& scores, size_t k);

}  // namespace fts

#endif  // FTS_SCORING_TOPK_H_
