// TF-IDF scoring (paper Section 3.1).
//
// Formulae (as in the paper):
//   tf(n,t)  = occurs(n,t) / unique_tokens(n)
//   idf(t)   = ln(1 + db_size / df(t))
//   score(n) = Σ_{t∈q} w(t)·tf(n,t)·idf(t) / (‖n‖₂·‖q‖₂)
//
// with w(t) = idf(t) and ‖q‖₂ = sqrt(Σ_{t∈q} idf(t)²). Each tuple of R_t
// carries the precomputable static score idf(t)²/(unique_tokens·‖n‖₂·‖q‖₂);
// summing it over the occurrences of t in n yields exactly the per-token
// TF-IDF contribution, which is what Theorem 2's conservation argument
// propagates through joins (scores split across the per-node join partners)
// and projections (scores of collapsing tuples add up).

#ifndef FTS_SCORING_TFIDF_H_
#define FTS_SCORING_TFIDF_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "index/index_snapshot.h"
#include "scoring/score_model.h"

namespace fts {

/// Query-specific TF-IDF score model. Construct once per query with the
/// query's search tokens (duplicates are collapsed).
///
/// All df/idf inputs are read from the block-list headers of `index` — no
/// posting payload is decoded by Idf()/LeafScore(), and DirectNodeScore()
/// seeks entry headers only (never position bytes). `counters` (nullable)
/// is charged for any cursor work the model performs, which lets tests pin
/// those guarantees.
///
/// When `index` is one segment of a multi-segment (or tombstoned)
/// snapshot, pass that segment's SegmentScoringStats: df, db_size and node
/// norms are then read from the snapshot-global precomputation instead of
/// the segment's own headers, keeping every score bit-identical to a
/// single-shot build of the surviving documents (index/index_snapshot.h).
class TfIdfScoreModel : public AlgebraScoreModel {
 public:
  TfIdfScoreModel(const InvertedIndex* index, std::vector<std::string> query_tokens,
                  EvalCounters* counters = nullptr,
                  const SegmentScoringStats* stats = nullptr);

  std::string_view name() const override { return "tfidf"; }

  double LeafScore(const InvertedIndex& index, TokenId token,
                   NodeId node) const override;
  double EntryScore(const InvertedIndex& index, TokenId token, NodeId node,
                    size_t count) const override {
    return LeafScore(index, token, node) * static_cast<double>(count);
  }
  double AnyLeafScore() const override { return 0.0; }
  /// idf²/(min_uniq_norm·‖q‖₂)·max_tf: LeafScore with the smallest
  /// denominator any node can present, times the block's largest
  /// occurrence count. Sound under IEEE rounding because min_uniq_norm is
  /// the exact minimum of the uniq·norm products LeafScore divides by and
  /// correctly rounded ops are monotone.
  double EntryScoreUpperBound(const InvertedIndex& index, TokenId token,
                              uint32_t max_tf) const override;
  double JoinScore(double s1, size_t group_other1, double s2,
                   size_t group_other2) const override {
    // Section 3.1: t3.score = t1.score/|R2| + t2.score/|R1|, with the
    // cardinalities read per node so the join conserves total score.
    return s1 / static_cast<double>(group_other1) +
           s2 / static_cast<double>(group_other2);
  }
  double ProjectCombine(double acc, double next) const override { return acc + next; }
  double SelectScore(double s, const PositionPredicate&,
                     std::span<const PositionInfo>,
                     std::span<const int64_t>) const override {
    return s;  // Section 3.1: selection keeps scores
  }
  double UnionBoth(double s1, double s2) const override { return s1 + s2; }
  double IntersectScore(double s1, double s2) const override {
    return std::min(s1, s2);
  }

  /// idf of a token under this model's corpus (0 for out-of-vocabulary).
  double Idf(const std::string& token) const;

  /// The classical cosine TF-IDF score of `node` against this model's query
  /// tokens, computed directly from index statistics (the reference value
  /// in Theorem 2's statement).
  double DirectNodeScore(NodeId node) const;

  /// ‖q‖₂ for this query.
  double query_norm() const { return query_norm_; }

 private:
  const InvertedIndex* index_;
  EvalCounters* counters_;                      // nullable
  const SegmentScoringStats* stats_;            // nullable (single-segment)
  std::vector<std::string> query_tokens_;       // distinct
  std::unordered_map<std::string, double> idf_;  // per distinct query token
  std::unordered_map<TokenId, double> idf_by_id_;
  double query_norm_ = 1.0;
};

}  // namespace fts

#endif  // FTS_SCORING_TFIDF_H_
