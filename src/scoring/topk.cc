#include "scoring/topk.h"

#include <algorithm>

namespace fts {

namespace {
// Min-heap comparator: the weakest result sits at the front. Ties prefer
// evicting the larger node id so results are deterministic.
bool HeapGreater(const ScoredNode& a, const ScoredNode& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.node < b.node;
}
}  // namespace

TopKAccumulator::TopKAccumulator(size_t k) : k_(k) { heap_.reserve(k); }

void TopKAccumulator::Add(NodeId node, double score) {
  if (k_ == 0) return;
  if (heap_.size() < k_) {
    heap_.push_back(ScoredNode{node, score});
    std::push_heap(heap_.begin(), heap_.end(), HeapGreater);
    return;
  }
  const ScoredNode& weakest = heap_.front();
  if (score < weakest.score || (score == weakest.score && node > weakest.node)) {
    return;
  }
  std::pop_heap(heap_.begin(), heap_.end(), HeapGreater);
  heap_.back() = ScoredNode{node, score};
  std::push_heap(heap_.begin(), heap_.end(), HeapGreater);
}

std::vector<ScoredNode> TopKAccumulator::Take() {
  std::vector<ScoredNode> out = std::move(heap_);
  heap_.clear();
  std::sort(out.begin(), out.end(), [](const ScoredNode& a, const ScoredNode& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.node < b.node;
  });
  return out;
}

std::vector<ScoredNode> TopK(const std::vector<NodeId>& nodes,
                             const std::vector<double>& scores, size_t k) {
  TopKAccumulator acc(k);
  for (size_t i = 0; i < nodes.size(); ++i) {
    acc.Add(nodes[i], i < scores.size() ? scores[i] : 0.0);
  }
  return acc.Take();
}

}  // namespace fts
