// Scoring framework of paper Section 3: per-tuple scores plus per-operator
// scoring transformations. The framework "does not mandate a fixed scoring
// method"; AlgebraScoreModel is the extension point, with two shipped
// implementations:
//
//   TfIdfScoreModel         (Section 3.1, scoring/tfidf.h)
//   ProbabilisticScoreModel (Section 3.2, scoring/probabilistic.h)
//
// The algebra operators (algebra/ops.h) and the pipelined engines consult
// the model at every operator; passing a null model disables scoring
// entirely (all scores 0), which the ablation benchmark uses to measure
// scoring overhead.

#ifndef FTS_SCORING_SCORE_MODEL_H_
#define FTS_SCORING_SCORE_MODEL_H_

#include <cstdint>
#include <limits>
#include <span>
#include <string_view>

#include "index/inverted_index.h"
#include "predicates/predicate.h"
#include "text/document.h"

namespace fts {

/// Per-operator score transformations (paper Section 3). All methods are
/// const and thread-safe; models are constructed per query (they may embed
/// query-level normalization factors).
class AlgebraScoreModel {
 public:
  virtual ~AlgebraScoreModel() = default;

  virtual std::string_view name() const = 0;

  /// Score of one tuple of the leaf relation R_token: one position of
  /// `token` inside `node`. ("The R_t relations contain the static scores",
  /// Section 3.1 — everything here is computable from index statistics.)
  virtual double LeafScore(const InvertedIndex& index, TokenId token,
                           NodeId node) const = 0;

  /// Score of tuples of the HasPos / SearchContext leaves (the ANY token).
  virtual double AnyLeafScore() const = 0;

  /// Node-level score of a whole inverted-list entry (`count` occurrences
  /// of `token` in `node`): the fold of the per-tuple leaf scores under
  /// ProjectCombine. Models override this with a closed form so pipelined
  /// engines score each entry in O(1) (paper Section 5.6.4: "the
  /// computation of scores can be done in constant time").
  virtual double EntryScore(const InvertedIndex& index, TokenId token, NodeId node,
                            size_t count) const {
    if (count == 0) return 0.0;
    const double s = LeafScore(index, token, node);
    double acc = s;
    for (size_t i = 1; i < count; ++i) acc = ProjectCombine(acc, s);
    return acc;
  }

  /// Upper bound on EntryScore(index, token, n, count) over every node n
  /// and every count <= max_tf — the per-block impact bound of block-max
  /// top-k evaluation (max_tf being the block's largest position count,
  /// from the v4 skip directory). Soundness contract: for any node in the
  /// index and any entry in the block, the actual EntryScore, evaluated by
  /// this model with its exact floating-point expressions, must compare <=
  /// to this bound. The base implementation returns +infinity ("cannot
  /// bound"), which disables score-skipping for the list — always sound.
  virtual double EntryScoreUpperBound(const InvertedIndex& index, TokenId token,
                                      uint32_t max_tf) const {
    (void)index;
    (void)token;
    (void)max_tf;
    return std::numeric_limits<double>::infinity();
  }

  /// Join transformation. `group_other1` is the number of join partners the
  /// first tuple has (|R2| restricted to the node, which is the reading of
  /// Section 3.1 under which the join "conserves the total score"), and
  /// symmetrically for `group_other2`.
  virtual double JoinScore(double s1, size_t group_other1, double s2,
                           size_t group_other2) const = 0;

  /// Folds the scores of input tuples that collapse onto the same projected
  /// tuple: returns the combination of accumulated `acc` and `next`.
  virtual double ProjectCombine(double acc, double next) const = 0;

  /// Selection transformation for predicate `pred` on the matched positions.
  virtual double SelectScore(double s, const PositionPredicate& pred,
                             std::span<const PositionInfo> positions,
                             std::span<const int64_t> consts) const = 0;

  /// Union transformation when the same tuple appears in both inputs.
  virtual double UnionBoth(double s1, double s2) const = 0;

  /// Intersection transformation for matching tuples.
  virtual double IntersectScore(double s1, double s2) const = 0;

  /// Difference transformation for surviving (left-only) tuples.
  virtual double DifferenceScore(double s1) const { return s1; }

  /// Negation transformation (Section 3: score := 1 - score).
  virtual double NegateScore(double s) const { return 1.0 - s; }
};

}  // namespace fts

#endif  // FTS_SCORING_SCORE_MODEL_H_
