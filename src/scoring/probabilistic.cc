#include "scoring/probabilistic.h"

#include <cmath>

namespace fts {

ProbabilisticScoreModel::ProbabilisticScoreModel(const InvertedIndex* index,
                                                 const SegmentScoringStats* stats)
    : index_(index), stats_(stats) {
  const double db_size =
      stats != nullptr ? static_cast<double>(stats->live_nodes)
                       : static_cast<double>(index->num_nodes());
  norm_ = std::log(1.0 + db_size);
  if (norm_ <= 0) norm_ = 1.0;
}

double ProbabilisticScoreModel::LeafScore(const InvertedIndex& index, TokenId token,
                                          NodeId) const {
  const uint32_t df = stats_ != nullptr ? stats_->global_df[token] : index.df(token);
  if (df == 0) return 0.0;
  const double db_size = stats_ != nullptr
                             ? static_cast<double>(stats_->live_nodes)
                             : static_cast<double>(index.num_nodes());
  const double idf = std::log(1.0 + db_size / df);
  return idf / norm_;
}

double ProbabilisticScoreModel::EntryScore(const InvertedIndex& index, TokenId token,
                                           NodeId node, size_t count) const {
  // Noisy-or of `count` independent occurrences, in closed form.
  const double p = LeafScore(index, token, node);
  return 1.0 - std::pow(1.0 - p, static_cast<double>(count));
}

}  // namespace fts
