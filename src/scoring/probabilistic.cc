#include "scoring/probabilistic.h"

#include <cmath>

namespace fts {

ProbabilisticScoreModel::ProbabilisticScoreModel(const InvertedIndex* index)
    : index_(index) {
  norm_ = std::log(1.0 + static_cast<double>(index->num_nodes()));
  if (norm_ <= 0) norm_ = 1.0;
}

double ProbabilisticScoreModel::LeafScore(const InvertedIndex& index, TokenId token,
                                          NodeId) const {
  const uint32_t df = index.df(token);
  if (df == 0) return 0.0;
  const double idf = std::log(1.0 + static_cast<double>(index.num_nodes()) / df);
  return idf / norm_;
}

double ProbabilisticScoreModel::EntryScore(const InvertedIndex& index, TokenId token,
                                           NodeId node, size_t count) const {
  // Noisy-or of `count` independent occurrences, in closed form.
  const double p = LeafScore(index, token, node);
  return 1.0 - std::pow(1.0 - p, static_cast<double>(count));
}

}  // namespace fts
