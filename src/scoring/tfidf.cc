#include "scoring/tfidf.h"

#include <algorithm>
#include <cmath>

#include "index/block_posting_list.h"

namespace fts {

namespace {

/// Global live df of `token` under snapshot stats (0 when the token has no
/// live occurrence anywhere in the snapshot).
uint32_t GlobalDfByText(const SegmentScoringStats& stats, const std::string& token) {
  const auto it = stats.df_by_text->find(token);
  return it == stats.df_by_text->end() ? 0 : it->second;
}

}  // namespace

TfIdfScoreModel::TfIdfScoreModel(const InvertedIndex* index,
                                 std::vector<std::string> query_tokens,
                                 EvalCounters* counters,
                                 const SegmentScoringStats* stats)
    : index_(index), counters_(counters), stats_(stats) {
  std::sort(query_tokens.begin(), query_tokens.end());
  query_tokens.erase(std::unique(query_tokens.begin(), query_tokens.end()),
                     query_tokens.end());
  query_tokens_ = std::move(query_tokens);
  double sum_sq = 0;
  for (const std::string& t : query_tokens_) {
    const TokenId id = index_->LookupToken(t);
    double idf = 0;
    if (stats_ != nullptr) {
      // Snapshot-global df: a token out-of-vocabulary in *this* segment but
      // live elsewhere still contributes its idf to the query norm.
      const uint32_t df = GlobalDfByText(*stats_, t);
      if (df > 0) {
        idf = std::log(1.0 + static_cast<double>(stats_->live_nodes) / df);
      }
    } else if (id != kInvalidToken && index_->df(id) > 0) {
      idf = std::log(1.0 + static_cast<double>(index_->num_nodes()) / index_->df(id));
    }
    idf_[t] = idf;
    if (id != kInvalidToken) idf_by_id_[id] = idf;
    sum_sq += idf * idf;
  }
  query_norm_ = sum_sq > 0 ? std::sqrt(sum_sq) : 1.0;
}

double TfIdfScoreModel::LeafScore(const InvertedIndex& index, TokenId token,
                                  NodeId node) const {
  auto it = idf_by_id_.find(token);
  double idf;
  if (it != idf_by_id_.end()) {
    idf = it->second;
  } else if (stats_ != nullptr) {
    const uint32_t df = stats_->global_df[token];
    idf = df == 0 ? 0.0
                  : std::log(1.0 + static_cast<double>(stats_->live_nodes) / df);
  } else {
    // Token scanned by the plan but absent from the query-token list (e.g.
    // synthetic plans in tests): fall back to its corpus idf.
    const uint32_t df = index.df(token);
    idf = df == 0 ? 0.0
                  : std::log(1.0 + static_cast<double>(index.num_nodes()) / df);
  }
  const double uniq = std::max<uint32_t>(1, index.unique_tokens(node));
  const double norm =
      stats_ != nullptr ? stats_->norms[node] : index.node_norm(node);
  return idf * idf / (uniq * norm * query_norm_);
}

double TfIdfScoreModel::EntryScoreUpperBound(const InvertedIndex& index,
                                             TokenId token,
                                             uint32_t max_tf) const {
  // Resolve idf exactly as LeafScore does, so the bound and the score use
  // the same value.
  auto it = idf_by_id_.find(token);
  double idf;
  if (it != idf_by_id_.end()) {
    idf = it->second;
  } else if (stats_ != nullptr) {
    const uint32_t df = stats_->global_df[token];
    idf = df == 0 ? 0.0
                  : std::log(1.0 + static_cast<double>(stats_->live_nodes) / df);
  } else {
    const uint32_t df = index.df(token);
    idf = df == 0 ? 0.0
                  : std::log(1.0 + static_cast<double>(index.num_nodes()) / df);
  }
  if (idf == 0.0) return 0.0;  // the token scores 0 everywhere
  const double min_un =
      stats_ != nullptr ? stats_->min_uniq_norm : index.min_uniq_norm();
  if (!(min_un > 0) || std::isinf(min_un)) {
    return std::numeric_limits<double>::infinity();  // cannot bound
  }
  return idf * idf / (min_un * query_norm_) * static_cast<double>(max_tf);
}

double TfIdfScoreModel::Idf(const std::string& token) const {
  auto it = idf_.find(token);
  if (it != idf_.end()) return it->second;
  if (stats_ != nullptr) {
    const uint32_t df = GlobalDfByText(*stats_, token);
    if (df == 0) return 0.0;
    return std::log(1.0 + static_cast<double>(stats_->live_nodes) / df);
  }
  const TokenId id = index_->LookupToken(token);
  if (id == kInvalidToken || index_->df(id) == 0) return 0.0;
  return std::log(1.0 + static_cast<double>(index_->num_nodes()) / index_->df(id));
}

double TfIdfScoreModel::DirectNodeScore(NodeId node) const {
  double score = 0;
  const double uniq = std::max<uint32_t>(1, index_->unique_tokens(node));
  for (const std::string& t : query_tokens_) {
    const BlockPostingList* list = index_->block_list_for_text(t);
    if (list == nullptr) continue;
    // Skip-seek the entry for `node` (reference computation only; query
    // evaluation itself never random-accesses lists). Only entry headers
    // decode: occurs comes from pos_count, never from position bytes. A
    // first-touch decode failure (lazily loaded index) reads as a missing
    // entry here — acceptable for a test-only reference path; production
    // scoring runs inside engines, which propagate cursor status.
    BlockListCursor cursor(list, counters_);
    if (cursor.SeekEntry(node) != node) continue;
    const double occurs = cursor.pos_count();
    const double idf = Idf(t);
    const double tf = occurs / uniq;
    score += idf /*w(t)*/ * tf * idf;
  }
  const double norm =
      stats_ != nullptr ? stats_->norms[node] : index_->node_norm(node);
  return score / (norm * query_norm_);
}

}  // namespace fts
