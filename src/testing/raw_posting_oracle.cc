#include "testing/raw_posting_oracle.h"

#include <map>

namespace fts {

RawPostingOracle BuildRawPostingOracle(const Corpus& corpus) {
  RawPostingOracle oracle;
  oracle.lists.resize(corpus.vocabulary_size());
  for (NodeId n = 0; n < corpus.num_nodes(); ++n) {
    const TokenizedDocument& doc = corpus.doc(n);
    std::map<TokenId, std::vector<PositionInfo>> occ;
    for (size_t i = 0; i < doc.size(); ++i) {
      occ[doc.tokens[i]].push_back(doc.positions[i]);
    }
    for (const auto& [tok, positions] : occ) {
      oracle.lists[tok].Append(n, positions);
    }
    if (!doc.positions.empty()) {
      oracle.any_list.Append(n, doc.positions);
    }
  }
  return oracle;
}

}  // namespace fts
