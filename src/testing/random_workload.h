// Seeded random corpora and queries for differential and concurrency
// tests.
//
// The block-resident differential harness and the concurrent-serving
// stress tests exercise the same workload shape: small dense corpora over
// a tiny vocabulary (so every list spans multiple blocks and predicates
// have plenty of witnesses) and random queries drawn from each language
// class. Those generators live here so the single-threaded harness and
// the N-thread harness can never drift apart on what they evaluate —
// test-support code, linked into the library like raw_posting_oracle but
// never used by production paths.

#ifndef FTS_TESTING_RANDOM_WORKLOAD_H_
#define FTS_TESTING_RANDOM_WORKLOAD_H_

#include "common/rng.h"
#include "lang/ast.h"
#include "text/corpus.h"

namespace fts {

/// A random token from the fixed 6-word test vocabulary ("a".."f"; small
/// so lists are dense and collisions between query atoms are common).
std::string RandomWorkloadToken(Rng* rng);

/// Random corpus with sentence/paragraph structure so structural
/// predicates and multi-block lists are exercised.
Corpus RandomWorkloadCorpus(Rng* rng, int docs, int max_sentences);

/// Random BOOL query (tokens, ANY, NOT/AND/OR) of the given depth.
LangExprPtr RandomBoolQuery(Rng* rng, int depth);

/// Random pipelined query: SOME-quantified token bindings plus predicates,
/// optionally negative ones (the NPRED shape), an AND NOT conjunct, or an
/// OR atom.
LangExprPtr RandomPipelinedQuery(Rng* rng, bool allow_negative);

}  // namespace fts

#endif  // FTS_TESTING_RANDOM_WORKLOAD_H_
