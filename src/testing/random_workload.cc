#include "testing/random_workload.h"

#include <string>
#include <utility>
#include <vector>

namespace fts {

namespace {

const char* kVocab[] = {"a", "b", "c", "d", "e", "f"};
constexpr size_t kVocabSize = 6;

}  // namespace

std::string RandomWorkloadToken(Rng* rng) {
  return std::string(kVocab[rng->Uniform(kVocabSize)]);
}

Corpus RandomWorkloadCorpus(Rng* rng, int docs, int max_sentences) {
  Corpus corpus;
  for (int d = 0; d < docs; ++d) {
    std::string text;
    const int sentences = static_cast<int>(rng->Uniform(max_sentences + 1));
    for (int s = 0; s < sentences; ++s) {
      const int words = 1 + static_cast<int>(rng->Uniform(6));
      for (int w = 0; w < words; ++w) text += RandomWorkloadToken(rng) + " ";
      text += rng->Bernoulli(0.25) ? ".\n\n" : ". ";
    }
    corpus.AddDocument(text);
  }
  return corpus;
}

LangExprPtr RandomBoolQuery(Rng* rng, int depth) {
  if (depth <= 0 || rng->Bernoulli(0.4)) {
    if (rng->Bernoulli(0.15)) return LangExpr::Any();
    return LangExpr::Token(RandomWorkloadToken(rng));
  }
  switch (rng->Uniform(3)) {
    case 0:
      return LangExpr::Not(RandomBoolQuery(rng, depth - 1));
    case 1:
      return LangExpr::And(RandomBoolQuery(rng, depth - 1),
                           RandomBoolQuery(rng, depth - 1));
    default:
      return LangExpr::Or(RandomBoolQuery(rng, depth - 1),
                          RandomBoolQuery(rng, depth - 1));
  }
}

LangExprPtr RandomPipelinedQuery(Rng* rng, bool allow_negative) {
  const int ntok = 2 + static_cast<int>(rng->Uniform(2));
  std::vector<std::string> vars;
  LangExprPtr body;
  for (int i = 0; i < ntok; ++i) {
    vars.push_back("v" + std::to_string(i));
    LangExprPtr atom = LangExpr::VarHasToken(vars[i], RandomWorkloadToken(rng));
    body = body ? LangExpr::And(std::move(body), std::move(atom)) : atom;
  }
  const int npred = 1 + static_cast<int>(rng->Uniform(2));
  for (int p = 0; p < npred; ++p) {
    const std::string& v1 = vars[rng->Uniform(vars.size())];
    const std::string& v2 = vars[rng->Uniform(vars.size())];
    LangExprPtr pred;
    if (allow_negative && rng->Bernoulli(0.5)) {
      switch (rng->Uniform(3)) {
        case 0:
          pred = LangExpr::Pred("not_distance", {v1, v2},
                                {static_cast<int64_t>(rng->Uniform(4))});
          break;
        case 1:
          pred = LangExpr::Pred("not_ordered", {v1, v2}, {});
          break;
        default:
          pred = LangExpr::Pred("not_samesentence", {v1, v2}, {});
          break;
      }
    } else {
      switch (rng->Uniform(4)) {
        case 0:
          pred = LangExpr::Pred("distance", {v1, v2},
                                {static_cast<int64_t>(1 + rng->Uniform(4))});
          break;
        case 1:
          pred = LangExpr::Pred("ordered", {v1, v2}, {});
          break;
        case 2:
          pred = LangExpr::Pred("samesentence", {v1, v2}, {});
          break;
        default:
          pred = LangExpr::Pred("odistance", {v1, v2},
                                {static_cast<int64_t>(1 + rng->Uniform(4))});
          break;
      }
    }
    body = LangExpr::And(std::move(body), std::move(pred));
  }
  if (rng->Bernoulli(0.3)) {
    body = LangExpr::And(std::move(body),
                         LangExpr::Not(LangExpr::Token(RandomWorkloadToken(rng))));
  }
  for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
    body = LangExpr::Some(*it, std::move(body));
  }
  if (rng->Bernoulli(0.25)) {
    body = LangExpr::Or(std::move(body),
                        LangExpr::Token(RandomWorkloadToken(rng)));
  }
  return body;
}

}  // namespace fts
