// Raw-representation oracle for differential testing.
//
// The only posting representation resident in an InvertedIndex is the
// block-compressed BlockPostingList. The harness in
// tests/block_resident_differential_test.cc proves that representation
// change is invisible: it builds this oracle — the same logical lists in
// raw random-access PostingList form — from the identical corpus and
// attaches it to the engines (set_raw_oracle_for_test), which then run the
// very same merge/pipeline/algebra code over raw ListCursors. Results and
// scores must be bit-identical to the block-resident evaluation.
//
// Production code never constructs one of these.

#ifndef FTS_TESTING_RAW_POSTING_ORACLE_H_
#define FTS_TESTING_RAW_POSTING_ORACLE_H_

#include <vector>

#include "index/inverted_index.h"
#include "text/corpus.h"

namespace fts {

/// The raw random-access posting table of a corpus: the uncompressed twin
/// of an InvertedIndex's block lists, indexed by the same token ids.
struct RawPostingOracle {
  std::vector<PostingList> lists;  // indexed by TokenId
  PostingList any_list;            // IL_ANY

  const PostingList* list(TokenId t) const {
    return t < lists.size() ? &lists[t] : nullptr;
  }
};

/// Builds the oracle table for `corpus`. Token ids match the corpus (and
/// therefore the built index's) dictionary, and each list carries exactly
/// the entries IndexBuilder::Build encodes into blocks.
RawPostingOracle BuildRawPostingOracle(const Corpus& corpus);

}  // namespace fts

#endif  // FTS_TESTING_RAW_POSTING_ORACLE_H_
