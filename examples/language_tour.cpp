// A tour of the expressiveness hierarchy (paper Section 4): runs, on the
// theorem witness corpora, the queries BOOL and DIST cannot express —
// showing COMP separating nodes that every weaker-language query confuses —
// and prints how the classifier places queries into the Figure 3 classes.

#include <cstdio>

#include "eval/router.h"
#include "index/index_builder.h"
#include "lang/classify.h"
#include "lang/parser.h"
#include "text/corpus.h"

namespace {

void Show(const fts::QueryRouter& router, const char* query) {
  auto routed = router.Evaluate(query);
  if (!routed.ok()) {
    std::printf("  %-70s -> error: %s\n", query, routed.status().ToString().c_str());
    return;
  }
  std::printf("  %-70s -> class %-10s nodes {", query,
              fts::LanguageClassToString(routed->language_class));
  for (fts::NodeId n : routed->result.nodes) std::printf(" %u", n);
  std::printf(" }\n");
}

}  // namespace

int main() {
  // --- Theorem 3's witness: BOOL cannot say "some token other than t1". ---
  std::printf("Theorem 3 witness corpus: CN0 = {t1}, CN1 = {t1 t2}\n");
  fts::Corpus c3;
  c3.AddDocument("t1");
  c3.AddDocument("t1 t2");
  fts::InvertedIndex i3 = fts::IndexBuilder::Build(c3);
  fts::QueryRouter r3(&i3);
  // Every BOOL query over {t1} treats CN0 and CN1 alike...
  Show(r3, "'t1'");
  Show(r3, "NOT 't1'");
  Show(r3, "'t1' AND ANY");
  // ...but COMP's position variables separate them:
  Show(r3, "SOME p1 (NOT p1 HAS 't1')");

  // --- Theorem 5's witness: DIST cannot negate a distance. ---
  std::printf("\nTheorem 5 witness corpus: CN0 = t1 t2 t1, CN1 = t1 t2 t1 t2\n");
  fts::Corpus c5;
  c5.AddDocument("t1 t2 t1");
  c5.AddDocument("t1 t2 t1 t2");
  fts::InvertedIndex i5 = fts::IndexBuilder::Build(c5);
  fts::QueryRouter r5(&i5);
  // DIST's positive distances hold on both nodes...
  Show(r5, "dist('t1', 't2', 0)");
  Show(r5, "dist('t2', 't1', 0)");
  // ...only the negated distance separates them (and lands in NPRED):
  Show(r5, "SOME p1 SOME p2 (p1 HAS 't1' AND p2 HAS 't2' AND "
           "NOT distance(p1, p2, 0))");
  Show(r5, "SOME p1 SOME p2 (p1 HAS 't1' AND p2 HAS 't2' AND "
           "not_distance(p1, p2, 0))");

  // --- The full hierarchy on one corpus. ---
  std::printf("\nThe Figure 3 hierarchy, bottom to top:\n");
  fts::Corpus ch;
  ch.AddDocument("alpha beta gamma. delta epsilon.\n\nzeta eta alpha");
  ch.AddDocument("beta beta alpha");
  ch.AddDocument("gamma delta");
  fts::InvertedIndex ih = fts::IndexBuilder::Build(ch);
  fts::QueryRouter rh(&ih);
  Show(rh, "'alpha' AND 'beta'");                          // BOOL-NONEG
  Show(rh, "NOT 'alpha'");                                 // BOOL
  Show(rh, "dist('alpha', 'beta', 1)");                    // PPRED
  Show(rh, "SOME p SOME q (p HAS 'alpha' AND q HAS 'beta' AND "
           "samepara(p, q))");                             // PPRED
  Show(rh, "SOME p SOME q (p HAS 'beta' AND q HAS 'beta' AND "
           "diffpos(p, q))");                              // NPRED
  Show(rh, "EVERY p (p HAS 'gamma' OR p HAS 'delta')");    // COMP
  return 0;
}
