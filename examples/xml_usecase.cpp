// XQuery Full-Text Use Case 10.4 (paper Example 1): given a collection of
// book and article elements, find the *book* elements containing the token
// "efficient" and the phrase "task completion" in that order with at most
// 10 intervening tokens.
//
// The full-text language deliberately does not select the context nodes —
// that is the structured half of the query (XQuery/SQL in the paper). This
// example plays that role with a tiny element extractor: each <book> body
// becomes one context node, and the COMP query supplies the full-text
// condition: ordered phrase matching plus a distance bound.

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "eval/router.h"
#include "index/index_builder.h"
#include "text/corpus.h"

namespace {

// Minimal structured-search stand-in: pull the text of every <tag>...</tag>
// element out of a document. (A real deployment would sit behind XQuery.)
std::vector<std::string> ExtractElements(std::string_view xml, std::string_view tag) {
  std::vector<std::string> out;
  const std::string open = "<" + std::string(tag) + ">";
  const std::string close = "</" + std::string(tag) + ">";
  size_t pos = 0;
  while (true) {
    size_t b = xml.find(open, pos);
    if (b == std::string_view::npos) break;
    b += open.size();
    size_t e = xml.find(close, b);
    if (e == std::string_view::npos) break;
    out.emplace_back(xml.substr(b, e - b));
    pos = e + close.size();
  }
  return out;
}

}  // namespace

int main() {
  const std::string collection = R"(
<book>Usability of a software measures how well the software supports
achieving an efficient software task completion in everyday work.</book>
<article>This article mentions efficient task completion too, but articles
are outside the search context.</article>
<book>The efficient authors wrote many words and only much much later, far
beyond any reasonable window of ten tokens, discussed task completion.</book>
<book>Task completion without the keyword nearby; the efficient marker
appears only afterwards.</book>
<book>An efficient approach: plan, execute, review. Task completion follows
within a few tokens.</book>
)";

  // Structured part: the search context is the book elements only.
  fts::Corpus books;
  for (const std::string& body : ExtractElements(collection, "book")) {
    books.AddDocument(body);
  }
  std::printf("search context: %zu book elements (articles excluded)\n\n",
              books.num_nodes());

  fts::InvertedIndex index = fts::IndexBuilder::Build(books);
  fts::QueryRouter router(&index);

  // Full-text part (Use Case 10.4): 'efficient', then the phrase
  // 'task completion', in that order, within 10 intervening tokens.
  const std::string query =
      "SOME e SOME t SOME c ("
      "e HAS 'efficient' AND t HAS 'task' AND c HAS 'completion' "
      "AND odistance(t, c, 0)"     // phrase: completion right after task
      "AND odistance(e, t, 10))";  // order + distance bound

  auto routed = router.Evaluate(query);
  if (!routed.ok()) {
    std::printf("query failed: %s\n", routed.status().ToString().c_str());
    return 1;
  }
  std::printf("query: %s\n", query.c_str());
  std::printf("routed to %s (%s class)\n\n", routed->engine.c_str(),
              fts::LanguageClassToString(routed->language_class));
  std::printf("matching books:\n");
  for (fts::NodeId n : routed->result.nodes) {
    std::printf("  book #%u\n", n);
  }
  std::printf("\nevaluation cost: %s\n", routed->result.counters.ToString().c_str());

  // Contrast with what weaker languages can say (Section 4): BOOL finds all
  // books with the three words, which over-approximates badly.
  auto boolish = router.Evaluate("'efficient' AND 'task' AND 'completion'");
  if (boolish.ok()) {
    std::printf("\nBOOL over-approximation ('efficient' AND 'task' AND "
                "'completion'): %zu books vs %zu correct\n",
                boolish->result.nodes.size(), routed->result.nodes.size());
  }
  return 0;
}
