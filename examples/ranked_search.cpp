// Ranked retrieval: the Section 3 scoring framework on a synthetic corpus,
// comparing TF-IDF (Section 3.1) and probabilistic (Section 3.2) ranking
// for the same Boolean and proximity queries, with top-k selection.

#include <cstdio>

#include "eval/router.h"
#include "index/index_builder.h"
#include "scoring/topk.h"
#include "workload/corpus_gen.h"

namespace {

void ShowTopK(const char* label, const fts::RoutedResult& routed, size_t k) {
  auto top = fts::TopK(routed.result.nodes, routed.result.scores, k);
  std::printf("  %-14s (%zu matches, engine %s):", label,
              routed.result.nodes.size(), routed.engine.c_str());
  for (const fts::ScoredNode& s : top) {
    std::printf("  #%u=%.4f", s.node, s.score);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // A reproducible synthetic corpus (see DESIGN.md for why synthetic data
  // substitutes for INEX 2003): 2000 documents, Zipfian vocabulary, with
  // planted "topic" tokens to query against.
  fts::CorpusGenOptions opts;
  opts.seed = 2026;
  opts.num_nodes = 2000;
  opts.min_doc_len = 60;
  opts.max_doc_len = 240;
  opts.vocabulary = 10000;
  opts.num_topic_tokens = 4;
  opts.topic_doc_fraction = 0.25;
  opts.topic_occurrences = 4;
  fts::Corpus corpus = fts::GenerateCorpus(opts);
  fts::InvertedIndex index = fts::IndexBuilder::Build(corpus);
  std::printf("corpus: %s\n\n", index.stats().ToString().c_str());

  fts::QueryRouter tfidf(&index, fts::ScoringKind::kTfIdf);
  fts::QueryRouter prob(&index, fts::ScoringKind::kProbabilistic);

  const char* queries[] = {
      "'topic0' OR 'topic1'",
      "'topic0' AND 'topic1'",
      "'topic0' AND NOT 'topic1'",
      // Proximity-scored: the probabilistic model attenuates by distance
      // (f = 1 - |p1-p2|/dist, Section 3.2).
      "SOME p SOME q (p HAS 'topic0' AND q HAS 'topic1' AND distance(p, q, 50))",
  };

  for (const char* q : queries) {
    std::printf("query: %s\n", q);
    auto a = tfidf.Evaluate(q);
    auto b = prob.Evaluate(q);
    if (!a.ok() || !b.ok()) {
      std::printf("  failed: %s\n",
                  (!a.ok() ? a.status() : b.status()).ToString().c_str());
      return 1;
    }
    ShowTopK("tf-idf", *a, 5);
    ShowTopK("probabilistic", *b, 5);
    // The two models rank on different scales but must agree on the match
    // set (scoring never changes Boolean semantics).
    if (a->result.nodes != b->result.nodes) {
      std::printf("  ERROR: scoring changed the match set!\n");
      return 1;
    }
    std::printf("\n");
  }

  // Engine-side top-k: the same ranking pushed into the evaluator. The
  // result is bit-identical to full-evaluate-then-TopK above, but the
  // block-max path uses the per-block score bounds to hop blocks that
  // cannot reach the top 5 (EvalCounters::blocks_skipped_by_score).
  fts::ExecContext ctx = prob.MakeContext();
  ctx.set_top_k(5);
  auto ranked = prob.Evaluate("'topic0' OR 'topic1'", ctx);
  if (!ranked.ok()) {
    std::printf("ranked query failed: %s\n",
                ranked.status().ToString().c_str());
    return 1;
  }
  std::printf("engine-side top-k: 'topic0' OR 'topic1'\n");
  ShowTopK("top-5", *ranked, 5);
  std::printf("  candidate blocks skipped on score bounds: %llu\n",
              static_cast<unsigned long long>(
                  ctx.counters().blocks_skipped_by_score));
  return 0;
}
