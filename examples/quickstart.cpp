// Quickstart: build a corpus, index it, and run queries from every language
// class through the router.
//
//   $ ./quickstart
//
// Demonstrates the core public API: Corpus -> IndexBuilder -> QueryRouter.

#include <cstdio>

#include "eval/router.h"
#include "index/index_builder.h"
#include "text/corpus.h"

int main() {
  // 1. A corpus of context nodes (documents here; could be tuples or XML
  //    elements — the language never looks outside one node).
  fts::Corpus corpus;
  corpus.AddDocument(
      "Usability of a software measures how well the software supports "
      "achieving an efficient software task completion.");
  corpus.AddDocument("Software testing is the study of test suites. "
                     "Usability testing measures user efficiency.");
  corpus.AddDocument("An unrelated note about gardening and tomatoes.");
  corpus.AddDocument("Efficient algorithms for full text search. "
                     "Task completion time matters.");

  // 2. Build the inverted index (posting lists + IL_ANY + statistics).
  fts::InvertedIndex index = fts::IndexBuilder::Build(corpus);
  std::printf("indexed %zu nodes, %zu distinct tokens\n", index.num_nodes(),
              index.vocabulary_size());
  std::printf("index shape: %s\n\n", index.stats().ToString().c_str());

  // 3. Route queries: the router classifies each query into the cheapest
  //    language class (BOOL < PPRED < NPRED < COMP) and picks the engine.
  fts::QueryRouter router(&index, fts::ScoringKind::kTfIdf);
  const char* queries[] = {
      // Boolean keyword search (BOOL engine, list merges).
      "'software' AND 'usability'",
      "'software' AND NOT 'testing'",
      // Proximity search (PPRED engine, single scan with skips).
      "SOME p SOME q (p HAS 'task' AND q HAS 'completion' AND odistance(p, q, 0))",
      // Negated proximity (NPRED engine, one scan per cursor ordering).
      "SOME p SOME q (p HAS 'software' AND q HAS 'usability' AND "
      "not_distance(p, q, 3))",
      // Full first-order power (COMP engine, materialized algebra).
      "EVERY p (NOT p HAS 'tomatoes')",
  };

  for (const char* q : queries) {
    auto routed = router.Evaluate(q);
    if (!routed.ok()) {
      std::printf("query failed: %s\n  %s\n", q, routed.status().ToString().c_str());
      return 1;
    }
    std::printf("query:  %s\n", q);
    std::printf("class:  %s (engine %s)\n",
                fts::LanguageClassToString(routed->language_class),
                routed->engine.c_str());
    std::printf("nodes: ");
    for (size_t i = 0; i < routed->result.nodes.size(); ++i) {
      std::printf(" %u(score %.4f)", routed->result.nodes[i],
                  routed->result.scores.empty() ? 0.0 : routed->result.scores[i]);
    }
    std::printf("\ncost:   %s\n\n", routed->result.counters.ToString().c_str());
  }
  return 0;
}
